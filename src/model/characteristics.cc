#include "src/model/characteristics.h"

#include <algorithm>
#include <cmath>

namespace dspcam::model {

namespace {

/// log-scaled 0..5 score of `bits` against the survey's best.
double scale_log(double value, double best) {
  if (value <= 0 || best <= 0) return 0;
  return std::clamp(5.0 * std::log2(1 + value) / std::log2(1 + best), 0.0, 5.0);
}

/// Latency score: 5 for the fastest combined update+search, scaled down
/// proportionally (missing figures are treated pessimistically).
double latency_score(const SurveyEntry& e, double best_total) {
  const double upd = e.update_cycles < 0 ? 256 : static_cast<double>(e.update_cycles);
  const double srch = e.search_cycles < 0 ? 64 : static_cast<double>(e.search_cycles);
  return std::clamp(5.0 * best_total / (upd + srch), 0.0, 5.0);
}

}  // namespace

std::vector<Characteristics> characteristic_scores() {
  const auto survey = full_survey();

  double best_entries = 0;
  double best_freq = 0;
  for (const auto& e : survey) {
    best_entries = std::max(best_entries, static_cast<double>(e.entries));
    best_freq = std::max(best_freq, e.freq_mhz);
  }
  const double best_total_latency = 6 + 8;  // our design's combined latency

  // "Scalability denotes the achieved CAM size" (Fig. 1): the paper scores
  // entry depth, the Max-CAM-Size column of Table I.
  auto entries_of = [](const SurveyEntry& e) { return static_cast<double>(e.entries); };
  auto freq_of = [](const SurveyEntry& e) { return e.freq_mhz; };

  auto family = [&](const std::string& name, CamCategory cat, double integration,
                    double multi_query, bool ours) {
    Characteristics c;
    c.family = name;
    double entries = 0;
    double freq = 0;
    double perf = 0;
    for (const auto& e : survey) {
      const bool is_ours = e.name.rfind("Ours", 0) == 0;
      if (e.category != cat || is_ours != ours) continue;
      entries = std::max(entries, entries_of(e));
      freq = std::max(freq, freq_of(e));
      perf = std::max(perf, latency_score(e, best_total_latency));
    }
    c.scalability = scale_log(entries, best_entries);
    c.frequency = std::clamp(5.0 * freq / best_freq, 0.0, 5.0);
    c.performance = perf;
    c.integration = integration;
    c.multi_query = multi_query;
    return c;
  };

  // Qualitative axes per the paper: LUTRAM designs need input preprocessing
  // (hard updates, middling integration); BRAM designs integrate easily but
  // serialise; hybrids have complex update management; the prior DSP design
  // has no multi-query and long search; ours is parameterised for
  // integration and supports M concurrent queries.
  return {
      family("LUT-based", CamCategory::kLut, 2.5, 1.0, false),
      family("BRAM-based", CamCategory::kBram, 3.0, 1.0, false),
      family("Hybrid", CamCategory::kHybrid, 2.0, 1.0, false),
      family("DSP (prior)", CamCategory::kDsp, 3.0, 1.0, false),
      family("DSP (ours)", CamCategory::kDsp, 4.5, 5.0, true),
  };
}

}  // namespace dspcam::model
