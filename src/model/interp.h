// Piecewise-linear calibration curves.
//
// The resource and timing models are calibrated to the paper's published
// datapoints (Tables V-VII): the model reproduces every anchor exactly and
// interpolates linearly between anchors / extrapolates with the boundary
// slope outside them. This keeps the model honest: no hidden fit, just the
// paper's own numbers plus declared interpolation.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/error.h"

namespace dspcam::model {

/// y = f(x) defined by (x, y) anchor points, piecewise linear, extrapolated
/// with the first/last segment's slope.
class PiecewiseLinear {
 public:
  /// Anchors must be strictly increasing in x; at least one is required.
  explicit PiecewiseLinear(std::vector<std::pair<double, double>> anchors)
      : anchors_(std::move(anchors)) {
    if (anchors_.empty()) throw ConfigError("PiecewiseLinear: no anchors");
    for (std::size_t i = 1; i < anchors_.size(); ++i) {
      if (anchors_[i].first <= anchors_[i - 1].first) {
        throw ConfigError("PiecewiseLinear: anchors must be strictly increasing");
      }
    }
  }

  double operator()(double x) const {
    if (anchors_.size() == 1) return anchors_.front().second;
    std::size_t hi = 1;
    while (hi + 1 < anchors_.size() && anchors_[hi].first < x) ++hi;
    const auto& [x0, y0] = anchors_[hi - 1];
    const auto& [x1, y1] = anchors_[hi];
    return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
  }

  const std::vector<std::pair<double, double>>& anchors() const noexcept {
    return anchors_;
  }

 private:
  std::vector<std::pair<double, double>> anchors_;
};

}  // namespace dspcam::model
