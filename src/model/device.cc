#include "src/model/device.h"

namespace dspcam::model {

Device alveo_u250() {
  Device d;
  d.name = "AMD Alveo U250 (XCU250, UltraScale+)";
  d.luts = 1728 * 1000ULL;
  d.registers = 3456 * 1000ULL;
  d.bram = 2688;
  d.uram = 1280;
  d.dsp = 12288;
  d.slr_count = 4;
  return d;
}

}  // namespace dspcam::model
