// Characteristic scoring of CAM design families (paper Fig. 1).
//
// Fig. 1 is a radar chart comparing LUT-, BRAM-, Hybrid- and DSP-based CAM
// families on five axes. The paper defines the axes as:
//   Scalability   - the achieved CAM size,
//   Performance   - normalised search and update latency (higher = faster),
//   Frequency     - maximum achievable clock,
//   Integration   - ease of integrating into an application,
//   Multi-query   - concurrent support for multiple input queries.
// The quantitative axes are derived here from the Table I survey data
// (best-in-family, normalised to a 0..5 scale); the two qualitative axes
// carry the paper's own assessment, stated per family in Sections I-II.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/model/survey.h"

namespace dspcam::model {

/// One radar-chart polygon.
struct Characteristics {
  std::string family;
  double scalability = 0;  ///< 0..5, from max stored bits (log scale).
  double performance = 0;  ///< 0..5, from combined update+search latency.
  double frequency = 0;    ///< 0..5, from max clock frequency.
  double integration = 0;  ///< 0..5, qualitative (paper's assessment).
  double multi_query = 0;  ///< 0..5, qualitative (paper's assessment).
};

/// Scores for the four prior families plus this design, derived from
/// full_survey().
std::vector<Characteristics> characteristic_scores();

}  // namespace dspcam::model
