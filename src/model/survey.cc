#include "src/model/survey.h"

#include "src/model/resources.h"
#include "src/model/timing.h"

namespace dspcam::model {

std::string to_string(CamCategory c) {
  switch (c) {
    case CamCategory::kLut: return "LUT";
    case CamCategory::kBram: return "BRAM";
    case CamCategory::kHybrid: return "Hybrid";
    case CamCategory::kDsp: return "DSP";
  }
  return "?";
}

std::vector<SurveyEntry> prior_designs() {
  // Values transcribed from Table I; -1 marks fields the source did not
  // report. Latencies are single end-to-end operations.
  return {
      {"Scale-TCAM", CamCategory::kLut, "XC7V2000T", 4096, 150, 139, 322648, 0, 0,
       33, -1, "LUTs = 80662 slices x 4"},
      {"DURE", CamCategory::kLut, "Virtex-6", 1024, 144, 175, 35807, 0, 0, 65, 1,
       "latencies on a single 512x36 block"},
      {"BPR-CAM", CamCategory::kLut, "XC6VLX760", 1024, 144, 111, 15260, 0, 0, -1, 2,
       ""},
      {"Frac-TCAM", CamCategory::kLut, "XC7V2000T", 1024, 160, 357, 16384, 0, 0, 38,
       -1, ""},
      {"HP-TCAM", CamCategory::kBram, "Virtex-6", 512, 36, 118, 5326, 56, 0, -1, 5,
       ""},
      {"PUMP-CAM", CamCategory::kBram, "XC6VLX760", 1024, 140, 87, 7516, 80, 0, 129,
       -1, ""},
      {"IO-CAM", CamCategory::kBram, "Arria V 5ASTD5", 8192, 32, 135, 19017, 2112, 0,
       -1, -1, "ALMs / M10Ks on Intel"},
      {"REST-CAM", CamCategory::kHybrid, "Kintex-7", 72, 28, 50, 130, 1, 0, 513, 5,
       ""},
      {"Preusser et al.", CamCategory::kDsp, "XCVU9P", 1000, 24, 350, 2843, 0, 1022,
       -1, 42, "DSP-based update queue"},
  };
}

SurveyEntry our_design() {
  // Maximum configuration of Section IV-C: 9728 x 48 bits (38 blocks of 256
  // cells would not divide evenly; the paper's build is 38 x 256 = 9728).
  cam::UnitConfig cfg;
  cfg.block.cell.data_width = 48;
  cfg.block.block_size = 256;
  cfg.block.bus_width = 480;  // 10 words of 48 bits on the 512-bit channel
  cfg.unit_size = 38;
  cfg.bus_width = 480;
  cfg = cam::UnitConfig::with_auto_timing(cfg);

  const ResourceUsage sys = system_resources(cfg);
  SurveyEntry e;
  e.name = "Ours (DSP-CAM)";
  e.category = CamCategory::kDsp;
  e.platform = "Alveo U250";
  e.entries = cfg.total_entries();
  e.width = 48;
  e.freq_mhz = unit_frequency_mhz(cfg);
  e.luts = static_cast<std::int64_t>(sys.luts);
  e.brams = static_cast<std::int64_t>(sys.brams);
  e.dsps = static_cast<std::int64_t>(sys.dsps);
  e.update_cycles = 6;  // verified by the cycle model (Table VIII)
  e.search_cycles = 8;
  e.note = "4 BRAMs are bus-interface FIFOs";
  return e;
}

std::vector<SurveyEntry> full_survey() {
  auto v = prior_designs();
  v.push_back(our_design());
  return v;
}

}  // namespace dspcam::model
