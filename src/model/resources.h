// FPGA resource estimation for the CAM hierarchy.
//
// The paper reports implementation (post-place-and-route) resource numbers
// from Vivado 2021.2 on the U250. Without the tools, this model reproduces
// those numbers by calibration: the published datapoints of Table V (cell),
// Table VI (block) and Table VII (unit) are anchors, and configurations
// between/beyond anchors are interpolated piecewise-linearly. The DSP count
// is structural (one slice per cell, exactly); BRAM is zero inside the CAM
// (the paper's 4 BRAMs are the bus-interface FIFOs of the full system
// wrapper, modelled separately).
#pragma once

#include <cstdint>

#include "src/cam/config.h"

namespace dspcam::model {

/// Post-implementation resource usage of one design.
struct ResourceUsage {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;   ///< Registers (structural estimate; not in the paper).
  std::uint64_t brams = 0;
  std::uint64_t dsps = 0;

  ResourceUsage& operator+=(const ResourceUsage& o) {
    luts += o.luts;
    ffs += o.ffs;
    brams += o.brams;
    dsps += o.dsps;
    return *this;
  }
};

/// CAM cell (Table V): 1 DSP, 0 LUT, 0 BRAM regardless of kind/width; the
/// valid flag costs one register.
ResourceUsage cell_resources(const cam::CellConfig& cfg);

/// Standalone CAM block (Table VI anchors: 694/745/808/1225/1371 LUTs at
/// sizes 32/64/128/256/512).
ResourceUsage block_resources(const cam::BlockConfig& cfg);

/// CAM unit (Table VII anchors: 2491..45244 LUTs at 512..9728 entries with
/// 256-cell blocks and a 512-bit bus). LUTs scale linearly with entry count
/// - "the required number of LUT increases linearly when the size of the
/// CAM unit increases".
ResourceUsage unit_resources(const cam::UnitConfig& cfg);

/// The full system wrapper around the CAM unit (bus interfaces + FIFOs).
/// Adds the 4 interface BRAMs the paper notes for Table I and the interface
/// LUT overhead implied by Table I's 72178 total vs Table VII's 45244 for
/// the same 9728-entry unit.
ResourceUsage system_resources(const cam::UnitConfig& cfg);

/// Utilisation percentage of `used` against `capacity` (0..100).
double utilisation_pct(std::uint64_t used, std::uint64_t capacity);

}  // namespace dspcam::model
