// Survey of recent FPGA CAM designs (paper Table I).
//
// These are the literature's published numbers, reproduced verbatim so the
// Table I bench can print the comparison and the Fig. 1 characteristic
// scores can be derived from real data. "Ours" is filled in from this
// project's own model/measurement at the paper's maximum configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dspcam::model {

/// Primary-resource family of a CAM design.
enum class CamCategory { kLut, kBram, kHybrid, kDsp };

std::string to_string(CamCategory c);

/// One Table I row. Value -1 means "not reported" in the literature.
struct SurveyEntry {
  std::string name;
  CamCategory category = CamCategory::kLut;
  std::string platform;
  std::uint32_t entries = 0;   ///< Max CAM size: number of entries.
  std::uint32_t width = 0;     ///< Entry width in bits.
  double freq_mhz = 0;
  std::int64_t luts = -1;
  std::int64_t brams = -1;
  std::int64_t dsps = -1;
  std::int64_t update_cycles = -1;
  std::int64_t search_cycles = -1;
  std::string note;

  /// Total stored bits (the scalability axis of Fig. 1).
  std::uint64_t bits() const noexcept {
    return static_cast<std::uint64_t>(entries) * width;
  }
};

/// The nine prior designs of Table I, in the paper's order.
std::vector<SurveyEntry> prior_designs();

/// This paper's design at maximum configuration (9728 x 48 bits on the
/// U250), with latencies as measured by our cycle model and resources from
/// the calibrated system model.
SurveyEntry our_design();

/// prior_designs() + our_design().
std::vector<SurveyEntry> full_survey();

}  // namespace dspcam::model
