// Clock-frequency model for the CAM hierarchy.
//
// Calibrated to the paper's implementation results:
//   - Standalone blocks close timing at 300 MHz at every size (Table VI).
//   - Units hold 300 MHz up to 2048 entries, then degrade with routing
//     congestion: Table VII (48-bit) anchors 4096->265, 6144->252,
//     8192->240, 9728->235 MHz.
//   - The 32-bit re-implementations of Table VIII imply slightly different
//     mid-size timing (4096 -> 254 MHz, from 4064 Mop/s / 16 words); both
//     anchor sets are kept and selected by data width.
// Between anchors the model interpolates linearly; beyond the last anchor it
// extrapolates with the final slope (floored at 100 MHz).
#pragma once

#include "src/cam/config.h"

namespace dspcam::model {

/// Achievable clock of a standalone CAM block (Table VI: 300 MHz flat).
double block_frequency_mhz(const cam::BlockConfig& cfg);

/// Achievable clock of a CAM unit for its total entry count and data width.
double unit_frequency_mhz(const cam::UnitConfig& cfg);

/// Derived operation throughput in Mop/s, the unit of the paper's
/// Tables VI and VIII ("op/s" there; updates count data words, searches
/// count keys, both pipelined at initiation interval 1).
struct OperationRates {
  double update_mops = 0;           ///< freq x words-per-bus-beat.
  double search_mops = 0;           ///< freq x 1 (per query port).
  double aggregate_search_mops = 0; ///< freq x M (all query ports).
};

OperationRates block_rates(const cam::BlockConfig& cfg);
OperationRates unit_rates(const cam::UnitConfig& cfg, unsigned groups = 1);

}  // namespace dspcam::model
