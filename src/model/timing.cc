#include "src/model/timing.h"

#include <algorithm>

#include "src/model/interp.h"

namespace dspcam::model {

namespace {

constexpr double kMinFreqMhz = 100.0;

/// Table VII anchors (48-bit data).
const PiecewiseLinear& unit_freq_curve_48() {
  static const PiecewiseLinear curve({{512, 300}, {1024, 300}, {2048, 300},
                                      {4096, 265}, {6144, 252}, {8192, 240},
                                      {9728, 235}});
  return curve;
}

/// Table VIII-implied anchors (32-bit data): 4800/300 up to 2048 entries,
/// then 4064 Mop/s = 254 MHz at 4096 and 3840 Mop/s = 240 MHz at 8192.
const PiecewiseLinear& unit_freq_curve_32() {
  static const PiecewiseLinear curve({{128, 300}, {2048, 300}, {4096, 254},
                                      {8192, 240}});
  return curve;
}

}  // namespace

double block_frequency_mhz(const cam::BlockConfig& cfg) {
  cfg.validate();
  return 300.0;  // Table VI: every evaluated block size closes at 300 MHz
}

double unit_frequency_mhz(const cam::UnitConfig& cfg) {
  cfg.validate();
  const auto& curve = cfg.block.cell.data_width > 32 ? unit_freq_curve_48()
                                                     : unit_freq_curve_32();
  const double entries = static_cast<double>(cfg.total_entries());
  // Below the smallest anchor the design trivially closes at the plateau.
  const double lo = curve.anchors().front().first;
  const double f = entries < lo ? curve(lo) : curve(entries);
  return std::max(f, kMinFreqMhz);
}

OperationRates block_rates(const cam::BlockConfig& cfg) {
  OperationRates r;
  const double f = block_frequency_mhz(cfg);
  r.update_mops = f * cfg.words_per_beat();
  r.search_mops = f;
  r.aggregate_search_mops = f;
  return r;
}

OperationRates unit_rates(const cam::UnitConfig& cfg, unsigned groups) {
  OperationRates r;
  const double f = unit_frequency_mhz(cfg);
  r.update_mops = f * cfg.words_per_beat();
  r.search_mops = f;
  r.aggregate_search_mops = f * groups;
  return r;
}

}  // namespace dspcam::model
