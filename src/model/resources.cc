#include "src/model/resources.h"

#include <cmath>

#include "src/common/bitops.h"
#include "src/model/interp.h"

namespace dspcam::model {

namespace {

/// Table VI LUT anchors (48-bit data, 512-bit bus, priority encoding).
const PiecewiseLinear& block_lut_curve() {
  static const PiecewiseLinear curve({{32, 694}, {64, 745}, {128, 808},
                                      {256, 1225}, {512, 1371}});
  return curve;
}

/// Table VII LUT anchors (256-cell blocks, 512-bit bus, 48-bit data).
const PiecewiseLinear& unit_lut_curve() {
  static const PiecewiseLinear curve({{512, 2491}, {1024, 5072}, {2048, 10167},
                                      {4096, 20330}, {6144, 29385},
                                      {8192, 38191}, {9728, 45244}});
  return curve;
}

/// Width scaling: the anchors are measured at 48-bit datapaths; narrower
/// data shrinks the DeMUX/broadcast wiring but not the control logic.
double width_factor(unsigned data_width) {
  return 0.6 + 0.4 * static_cast<double>(data_width) / kDspWordBits;
}

/// Encoder scheme cost relative to the priority encoder the anchors used.
double encoding_factor(cam::EncodingScheme scheme) {
  switch (scheme) {
    case cam::EncodingScheme::kPriorityIndex: return 1.0;
    case cam::EncodingScheme::kOneHot: return 0.85;  // wires + buffer only
    case cam::EncodingScheme::kMatchCount: return 1.10;  // popcount tree
  }
  return 1.0;
}

/// Per-block glue inside a unit beyond what the entry-count curve covers
/// (crossbar ports + result-collection muxing), charged when the unit uses
/// more, smaller blocks than the 256-cell anchors assumed.
constexpr double kInUnitPerBlockLuts = 64.0;

}  // namespace

ResourceUsage cell_resources(const cam::CellConfig& cfg) {
  cfg.validate();
  ResourceUsage r;
  r.dsps = 1;   // Table V: the cell is exactly one DSP48E2
  r.luts = 0;
  r.brams = 0;
  r.ffs = 1;    // the valid flag (kind/width do not change the footprint)
  return r;
}

ResourceUsage block_resources(const cam::BlockConfig& cfg) {
  cfg.validate();
  ResourceUsage r;
  r.dsps = cfg.block_size;
  r.brams = 0;
  r.luts = static_cast<std::uint64_t>(
      std::llround(block_lut_curve()(cfg.block_size) *
                   width_factor(cfg.cell.data_width) * encoding_factor(cfg.encoding)));
  // Structural register estimate (the paper does not report FFs): broadcast
  // register (bus + control), fill pointer, per-cell valid flags, and the
  // optional encoder output buffer.
  r.ffs = cfg.bus_width + 8 + log2_ceil(cfg.block_size) + cfg.block_size +
          (cfg.output_buffer ? log2_ceil(cfg.block_size) + 2 : 0);
  return r;
}

ResourceUsage unit_resources(const cam::UnitConfig& cfg) {
  cfg.validate();
  ResourceUsage r;
  r.dsps = static_cast<std::uint64_t>(cfg.unit_size) * cfg.block.block_size;
  r.brams = 0;
  const double anchor_blocks = cfg.total_entries() / 256.0;
  const double extra_blocks =
      static_cast<double>(cfg.unit_size) > anchor_blocks
          ? static_cast<double>(cfg.unit_size) - anchor_blocks
          : 0.0;
  r.luts = static_cast<std::uint64_t>(
      std::llround(unit_lut_curve()(cfg.total_entries()) *
                       width_factor(cfg.block.cell.data_width) *
                       encoding_factor(cfg.block.encoding) +
                   kInUnitPerBlockLuts * extra_blocks));
  // Pipeline registers: 4 update + 3 search stages of bus width, the routing
  // table, per-block valid flags and the collection register.
  r.ffs = 7ULL * (cfg.bus_width + 16) +
          static_cast<std::uint64_t>(cfg.unit_size) * log2_ceil(cfg.unit_size) +
          static_cast<std::uint64_t>(cfg.unit_size) * cfg.block.block_size +
          2ULL * (cfg.block.cell.data_width + 32);
  return r;
}

ResourceUsage system_resources(const cam::UnitConfig& cfg) {
  ResourceUsage r = unit_resources(cfg);
  // Table I reports the full system at the maximum configuration: 72178 LUTs
  // and 4 BRAMs versus Table VII's 45244 LUTs for the bare unit. The delta
  // (26934 LUTs + 4 FIFO BRAMs) is the bus-interface wrapper, which does not
  // grow with CAM size.
  r.luts += 26934;
  r.brams += 4;
  r.ffs += 4096;  // interface FIFO pointers/synchronisers (estimate)
  return r;
}

double utilisation_pct(std::uint64_t used, std::uint64_t capacity) {
  return capacity == 0 ? 0.0
                       : 100.0 * static_cast<double>(used) / static_cast<double>(capacity);
}

}  // namespace dspcam::model
