// Bounded object-recycling pool.
//
// The hot simulation loop produces one heap-backed payload per completed
// search beat (a result vector). Those payloads have a natural closed loop:
// the consumer scatters their contents into a reorder buffer and the empty
// shell can be handed straight back for the next beat. FreeList is that
// hand-back point: acquire() returns a recycled object (capacity intact)
// when one is available, release() parks an object for reuse. The pool is
// bounded so a burst cannot pin memory forever; overflow releases simply
// destroy the object.
//
// Single-threaded by design - use one FreeList per owning component.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dspcam {

/// LIFO pool of recycled T objects (LIFO keeps the hottest buffer cached).
template <typename T>
class FreeList {
 public:
  explicit FreeList(std::size_t max_pooled = 64) : max_pooled_(max_pooled) {}

  /// A recycled object if available, else a default-constructed one. The
  /// recycled object's logical content is unspecified - callers must clear
  /// or overwrite it (its point is the retained capacity).
  T acquire() {
    if (pool_.empty()) return T{};
    T value = std::move(pool_.back());
    pool_.pop_back();
    return value;
  }

  /// Returns an object to the pool (dropped if the pool is full).
  void release(T value) {
    if (pool_.size() < max_pooled_) pool_.push_back(std::move(value));
  }

  std::size_t pooled() const noexcept { return pool_.size(); }

 private:
  std::size_t max_pooled_;
  std::vector<T> pool_;
};

}  // namespace dspcam
