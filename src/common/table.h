// Plain-text table rendering for benchmark harness output.
//
// Every bench binary regenerates one of the paper's tables and prints it in
// the same row/column layout the paper uses, so the output can be eyeballed
// against the publication directly. This tiny formatter keeps that printing
// uniform: right-aligned numeric columns, a header rule, and an optional
// caption line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dspcam {

/// Column-aligned text table builder.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with padded columns and a header separator.
  std::string to_string() const;

  /// Convenience: renders with a caption line above the table.
  std::string to_string(const std::string& caption) const;

  /// Formats a double with `digits` decimal places.
  static std::string num(double value, int digits = 2);

  /// Formats an integer with thousands separators (1234567 -> "1,234,567").
  static std::string num(std::uint64_t value);
  static std::string num(int value) { return num(static_cast<std::uint64_t>(value)); }
  static std::string num(unsigned value) { return num(static_cast<std::uint64_t>(value)); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dspcam
