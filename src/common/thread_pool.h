// Minimal persistent thread pool for lockstep fan-out.
//
// Built for the sharded engine's per-cycle barrier: every simulated cycle,
// S independent shards step once, then a single-threaded collect pass runs.
// That access pattern needs (a) workers that persist across millions of
// batches (spawning threads per cycle would dwarf the work), (b) a dispatch
// path with no per-batch heap traffic (no std::function capture boxing),
// and (c) a hard completion barrier before the caller continues.
//
// Design notes:
//  - Indices are claimed with a single fetch_add on an atomic cursor, so
//    work distribution is dynamic and race-free.
//  - The batch descriptor (task pointer, context, size) is published before
//    the cursor is re-armed with release ordering; any thread that wins an
//    index through the cursor's acquire fetch_add therefore sees the full
//    descriptor, even a "stale" worker that never parked between batches.
//  - The caller participates in the batch, so forward progress never
//    depends on a worker being scheduled, and a pool with zero workers
//    degenerates to a plain serial loop.
//  - Exceptions thrown by tasks are captured (first one wins) and rethrown
//    on the calling thread after the barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dspcam {

/// Fixed-size pool running indexed batches with a completion barrier.
class ThreadPool {
 public:
  /// Spawns `workers` threads. Zero is legal: batches run inline on the
  /// calling thread (useful as a configuration-driven serial fallback).
  explicit ThreadPool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
  }

  unsigned workers() const noexcept { return static_cast<unsigned>(threads_.size()); }

  /// Runs fn(0) .. fn(n-1) across the pool plus the calling thread and
  /// returns once all have finished. `fn` must be safe to invoke
  /// concurrently for distinct indices. Rethrows the first task exception.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    using Decayed = std::remove_reference_t<Fn>;
    auto trampoline = [](void* ctx, std::size_t i) {
      (*static_cast<Decayed*>(ctx))(i);
    };
    run_batch(+trampoline, const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n);
  }

 private:
  void run_batch(void (*task)(void*, std::size_t), void* ctx, std::size_t n) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) task(ctx, i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_.store(task, std::memory_order_relaxed);
      ctx_.store(ctx, std::memory_order_relaxed);
      total_.store(n, std::memory_order_relaxed);
      completed_.store(0, std::memory_order_relaxed);
      // Re-arming the cursor is the release point that publishes the batch.
      cursor_.store(0, std::memory_order_release);
      ++epoch_;
    }
    wake_.notify_all();

    drain_batch();  // the caller is a worker too

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this, n] {
      return completed_.load(std::memory_order_acquire) == n;
    });
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// Claims and executes indices until the current batch is exhausted.
  void drain_batch() {
    for (;;) {
      const std::size_t i = cursor_.fetch_add(1, std::memory_order_acquire);
      if (i >= total_.load(std::memory_order_acquire)) return;
      auto* task = task_.load(std::memory_order_relaxed);
      void* ctx = ctx_.load(std::memory_order_relaxed);
      try {
        task(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          total_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(mutex_);  // pair with the waiter
        done_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this, seen] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
      }
      drain_batch();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;

  std::atomic<void (*)(void*, std::size_t)> task_{nullptr};
  std::atomic<void*> ctx_{nullptr};
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> completed_{0};
};

}  // namespace dspcam
