// Minimal persistent thread pool for lockstep fan-out.
//
// Built for the sharded engine's stepping barrier: every simulated beat (one
// cycle, or a horizon-sized batch of cycles), S independent shards advance,
// then a single-threaded collect pass runs. That access pattern needs (a)
// workers that persist across millions of batches (spawning threads per cycle
// would dwarf the work), (b) a dispatch path with no per-batch heap traffic
// (no std::function capture boxing), and (c) a hard completion barrier before
// the caller continues.
//
// Design notes:
//  - Indices are claimed with a single fetch_add on an atomic cursor, so
//    work distribution is dynamic and race-free.
//  - The batch descriptor (task pointer, context, size) is published before
//    the cursor is re-armed with release ordering; any thread that wins an
//    index through the cursor's acquire fetch_add therefore sees the full
//    descriptor, even a "stale" worker that never parked between batches.
//  - The caller participates in the batch, so forward progress never
//    depends on a worker being scheduled, and a pool with zero workers
//    degenerates to a plain serial loop.
//  - Exceptions thrown by tasks are captured (first one wins) and rethrown
//    on the calling thread after the barrier.
//
// Epoch barrier mode (spin-then-park): with spin_iterations > 0, batches are
// announced by bumping an atomic epoch counter; idle workers spin on it (and
// the caller spins on the completion count) for a bounded budget before
// falling back to the condition variables. In the engine's steady state -
// one batch every few microseconds - nobody ever parks, so a batch costs two
// atomic stores instead of two condvar round-trips through the kernel.
// Lost-wakeup safety: a thread about to park first publishes its parked flag
// (seq_cst), then re-checks the wake condition under the mutex; a publisher
// bumps the epoch / completion count (seq_cst), then looks at the parked
// flags. In the seq_cst total order one of the two always sees the other.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dspcam {

/// Fixed-size pool running indexed batches with a completion barrier.
class ThreadPool {
 public:
  /// Sentinel for the constructor: pick the spin budget from the machine.
  /// Resolves to kDefaultSpinIterations when the caller plus every worker
  /// fits on its own hardware thread (spinning steals nobody's core), and
  /// to 0 (park immediately) on oversubscribed or single-core hosts, where
  /// a spinning waiter only delays the thread it is waiting for.
  static constexpr unsigned kAdaptiveSpin = ~0u;

  /// Spin budget used by kAdaptiveSpin on machines with spare cores. Each
  /// iteration is one pause/yield hint; the budget bounds the busy-wait to
  /// a few microseconds before parking.
  static constexpr unsigned kDefaultSpinIterations = 4096;

  /// Spawns `workers` threads. Zero is legal: batches run inline on the
  /// calling thread (useful as a configuration-driven serial fallback).
  /// `spin_iterations` selects the barrier mode: 0 parks on a condition
  /// variable immediately (the classic mode), > 0 enables the epoch
  /// spin-then-park barrier, kAdaptiveSpin picks per the machine.
  explicit ThreadPool(unsigned workers, unsigned spin_iterations = kAdaptiveSpin) {
    if (spin_iterations == kAdaptiveSpin) {
      const unsigned hw = std::thread::hardware_concurrency();
      spin_ = hw > workers ? kDefaultSpinIterations : 0;
    } else {
      spin_ = spin_iterations;
    }
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    stop_.store(true);  // visible to spinners without the mutex
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
  }

  unsigned workers() const noexcept { return static_cast<unsigned>(threads_.size()); }

  /// The resolved spin budget (0 = park-immediately mode).
  unsigned spin_iterations() const noexcept { return spin_; }

  /// Runs fn(0) .. fn(n-1) across the pool plus the calling thread and
  /// returns once all have finished. `fn` must be safe to invoke
  /// concurrently for distinct indices. Rethrows the first task exception.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    using Decayed = std::remove_reference_t<Fn>;
    auto trampoline = [](void* ctx, std::size_t i) {
      (*static_cast<Decayed*>(ctx))(i);
    };
    run_batch(+trampoline, const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n);
  }

 private:
  /// One bounded spin step: cheap CPU hints first, a scheduler yield for the
  /// tail of the budget so an oversubscribed waiter cannot starve the thread
  /// it waits for.
  static void spin_pause(unsigned iteration) {
    if (iteration % 64 == 63) {
      std::this_thread::yield();
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  void run_batch(void (*task)(void*, std::size_t), void* ctx, std::size_t n) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) task(ctx, i);
      return;
    }
    // Publish the batch descriptor; the cursor's release store is the
    // publication point for claimants, the epoch bump is the wake signal.
    task_.store(task, std::memory_order_relaxed);
    ctx_.store(ctx, std::memory_order_relaxed);
    total_.store(n, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    cursor_.store(0, std::memory_order_release);
    epoch_.fetch_add(1);  // seq_cst: ordered against parked_ publication
    if (parked_.load() > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      wake_.notify_all();
    }

    drain_batch();  // the caller is a worker too

    // Completion barrier: spin first, then park on done_.
    for (unsigned i = 0; i < spin_; ++i) {
      if (completed_.load(std::memory_order_acquire) == n) break;
      spin_pause(i);
    }
    if (completed_.load(std::memory_order_acquire) != n) {
      std::unique_lock<std::mutex> lock(mutex_);
      caller_parked_.store(true);  // seq_cst: ordered against completed_
      done_.wait(lock, [this, n] {
        return completed_.load(std::memory_order_acquire) == n;
      });
      caller_parked_.store(false);
    }
    if (error_) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

  /// Claims and executes indices until the current batch is exhausted.
  void drain_batch() {
    for (;;) {
      const std::size_t i = cursor_.fetch_add(1, std::memory_order_acquire);
      if (i >= total_.load(std::memory_order_acquire)) return;
      auto* task = task_.load(std::memory_order_relaxed);
      void* ctx = ctx_.load(std::memory_order_relaxed);
      try {
        task(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      if (completed_.fetch_add(1) + 1 == total_.load(std::memory_order_acquire)) {
        // seq_cst fetch_add above orders against the caller's parked flag:
        // either we see the flag and notify under the mutex, or the caller's
        // predicate check (after publishing the flag) sees our count.
        if (caller_parked_.load()) {
          std::lock_guard<std::mutex> lock(mutex_);  // pair with the waiter
          done_.notify_all();
        }
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      // Wake path: spin on the epoch, then park. The epoch bump is ordered
      // (seq_cst) against our parked_ increment, so the publisher either
      // sees us parked and notifies, or we see the new epoch before waiting.
      bool woke = false;
      for (unsigned i = 0; i < spin_ && !woke; ++i) {
        woke = stop_.load(std::memory_order_relaxed) || epoch_.load() != seen;
        if (!woke) spin_pause(i);
      }
      if (!woke) {
        std::unique_lock<std::mutex> lock(mutex_);
        parked_.fetch_add(1);
        wake_.wait(lock, [this, seen] {
          return stop_.load(std::memory_order_relaxed) || epoch_.load() != seen;
        });
        parked_.fetch_sub(1);
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      seen = epoch_.load();
      drain_batch();
    }
  }

  std::vector<std::thread> threads_;
  unsigned spin_ = 0;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::exception_ptr error_;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> parked_{0};
  std::atomic<bool> caller_parked_{false};

  std::atomic<void (*)(void*, std::size_t)> task_{nullptr};
  std::atomic<void*> ctx_{nullptr};
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> completed_{0};
};

}  // namespace dspcam
