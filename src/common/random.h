// Deterministic pseudo-random number generation for workloads and tests.
//
// All stochastic workloads (random update/search streams, synthetic graph
// generation) use this generator so every benchmark and test is reproducible
// bit-for-bit across runs and platforms. The core is splitmix64 feeding
// xoshiro256**, both public-domain algorithms with well-studied statistical
// quality and trivially portable semantics.
#pragma once

#include <cstdint>

namespace dspcam {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialises the state from `seed`; the same seed always yields the
  /// same sequence.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be nonzero. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform value with exactly `bits` significant bits of range
  /// (i.e. in [0, 2^bits)). bits in 1..64.
  std::uint64_t next_bits(unsigned bits);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  std::uint64_t s_[4]{};
};

}  // namespace dspcam
