// Bit-manipulation helpers shared across the DSP-CAM libraries.
//
// All CAM datapaths in this project are at most 48 bits wide (the DSP48E2
// ALU width), so a uint64_t word comfortably holds any cell value, search
// key, or mask. These helpers centralise the masking/extraction idioms so
// the hardware-model code reads like the UG579 datapath description.
#pragma once

#include <cstdint>
#include <string>

namespace dspcam {

/// Width of the DSP48E2 ALU datapath; the hard upper bound on CAM word width.
inline constexpr unsigned kDspWordBits = 48;

/// Mask covering the full 48-bit DSP datapath.
inline constexpr std::uint64_t kDspWordMask = (std::uint64_t{1} << kDspWordBits) - 1;

/// Returns a mask with the low `bits` bits set. `bits` may be 0..64.
constexpr std::uint64_t low_bits(unsigned bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// Truncates `value` to its low `bits` bits.
constexpr std::uint64_t truncate(std::uint64_t value, unsigned bits) noexcept {
  return value & low_bits(bits);
}

/// True if `value` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Smallest power of two >= value (value must be >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t value) noexcept {
  std::uint64_t p = 1;
  while (p < value) p <<= 1;
  return p;
}

/// floor(log2(value)); value must be nonzero.
constexpr unsigned log2_floor(std::uint64_t value) noexcept {
  unsigned r = 0;
  while (value >>= 1) ++r;
  return r;
}

/// ceil(log2(value)); the number of address bits needed to index `value`
/// distinct locations. log2_ceil(1) == 0.
constexpr unsigned log2_ceil(std::uint64_t value) noexcept {
  return is_pow2(value) ? log2_floor(value) : log2_floor(value) + 1;
}

/// Extracts the bit field [lo, lo+width) from `value`.
constexpr std::uint64_t bit_field(std::uint64_t value, unsigned lo, unsigned width) noexcept {
  return (value >> lo) & low_bits(width);
}

/// Replaces the bit field [lo, lo+width) of `value` with `field`.
constexpr std::uint64_t set_bit_field(std::uint64_t value, unsigned lo, unsigned width,
                                      std::uint64_t field) noexcept {
  const std::uint64_t m = low_bits(width) << lo;
  return (value & ~m) | ((field << lo) & m);
}

/// Renders `value` as a binary string of exactly `bits` characters
/// (MSB first), e.g. to_binary(0b101, 4) == "0101". Used by debug dumps.
std::string to_binary(std::uint64_t value, unsigned bits);

/// Renders `value` as a fixed-width lowercase hex string covering `bits`
/// bits (rounded up to whole nibbles), e.g. to_hex(0xab, 12) == "0ab".
std::string to_hex(std::uint64_t value, unsigned bits);

}  // namespace dspcam
