#include "src/common/table.h"

#include <cstdio>
#include <stdexcept>

namespace dspcam {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row has " + std::to_string(cells.size()) +
                                " cells; expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += std::string(widths[c] - row[c].size(), ' ') + row[c];
    }
    line += " |\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += c == 0 ? "|" : "|";
    rule += std::string(widths[c] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::to_string(const std::string& caption) const {
  return caption + "\n" + to_string();
}

std::string TextTable::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string TextTable::num(std::uint64_t value) {
  std::string raw = std::to_string(value);
  std::string out;
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += raw[i];
  }
  return out;
}

}  // namespace dspcam
