// Dynamic fixed-size bit vector.
//
// Models hardware match-line buses: a CAM block with 512 cells produces a
// 512-bit match vector per search. std::bitset is compile-time sized and
// std::vector<bool> lacks word-level access, so this small type provides a
// runtime-sized bit vector with the operations encoders need: set/test,
// population count, and first-set-bit scan.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/error.h"

namespace dspcam {

/// Runtime-sized bit vector with word-level storage.
class BitVec {
 public:
  BitVec() = default;

  /// Creates a vector of `size` bits, all clear.
  explicit BitVec(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool test(std::size_t i) const {
    check(i);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void set(std::size_t i, bool value = true) {
    check(i);
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    if (value) {
      words_[i / 64] |= bit;
    } else {
      words_[i / 64] &= ~bit;
    }
  }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const noexcept {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool any() const noexcept {
    for (auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Index of the lowest set bit, or size() if none (a priority encoder).
  std::size_t find_first() const noexcept {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) {
        return wi * 64 + static_cast<std::size_t>(std::countr_zero(words_[wi]));
      }
    }
    return size_;
  }

  /// Raw word storage (little-endian bit order), for tests and dumps.
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Mutable raw word storage, for kernels that fill the vector wholesale
  /// (the fused sweep→encode one-hot path writes ceil(size/64) words here
  /// with no per-word bounds re-check). Callers MUST keep bits at or above
  /// size() in the top word clear - the invariant set_word enforces - or
  /// count()/any()/find_first() lie.
  std::uint64_t* mutable_words() noexcept { return words_.data(); }

  /// Writes one whole 64-bit word of the vector at once (a match kernel
  /// filling 64 match lines per step). Bits above size() in the top word
  /// are forced clear so count()/any()/find_first() stay correct.
  void set_word(std::size_t wi, std::uint64_t value) {
    if (wi >= words_.size()) throw SimError("BitVec: word index out of range");
    const std::size_t top_bits = size_ - wi * 64;
    if (top_bits < 64) value &= (std::uint64_t{1} << top_bits) - 1;
    words_[wi] = value;
  }

  /// Number of 64-bit storage words.
  std::size_t word_count() const noexcept { return words_.size(); }

  bool operator==(const BitVec&) const = default;

 private:
  void check(std::size_t i) const {
    if (i >= size_) throw SimError("BitVec: index out of range");
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dspcam
