#include "src/common/bitops.h"

namespace dspcam {

std::string to_binary(std::uint64_t value, unsigned bits) {
  std::string out(bits, '0');
  for (unsigned i = 0; i < bits; ++i) {
    if ((value >> (bits - 1 - i)) & 1) out[i] = '1';
  }
  return out;
}

std::string to_hex(std::uint64_t value, unsigned bits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const unsigned nibbles = (bits + 3) / 4;
  std::string out(nibbles, '0');
  for (unsigned i = 0; i < nibbles; ++i) {
    out[nibbles - 1 - i] = kDigits[(value >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace dspcam
