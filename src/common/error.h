// Exception types for the DSP-CAM libraries.
//
// Configuration mistakes (invalid Table III parameters, non-divisible group
// counts, oversized data widths) are programming errors at design-elaboration
// time and throw ConfigError. Runtime hardware-impossible situations in the
// simulation kernel (popping an empty FIFO, double-driving a register) throw
// SimError. Hot-path CAM operations (search miss, full block) are ordinary
// results, not exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace dspcam {

/// Invalid architecture parameters detected while elaborating a design.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

/// A simulation-kernel invariant was violated (a bug in the caller's
/// cycle-level driving of the model, not a modelled hardware behaviour).
class SimError : public std::logic_error {
 public:
  explicit SimError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace dspcam
