#include "src/common/random.h"

namespace dspcam {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling over the largest multiple of `bound` that fits in
  // 64 bits, giving an exactly uniform distribution.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  return span == 0 ? next() : lo + next_below(span);
}

std::uint64_t Rng::next_bits(unsigned bits) {
  return bits >= 64 ? next() : next() >> (64 - bits);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace dspcam
