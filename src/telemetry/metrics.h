// Unified metrics plane: typed counters, gauges and log-bucketed histograms
// behind one hierarchical registry.
//
// The paper reads implementation-level counters (cycles, resource activity,
// per-group throughput) out of Vivado; the simulation substitutes for that,
// so every layer of the stack - driver, sharded engine, CAM system, fault
// campaign - reports into one MetricRegistry instead of ad-hoc per-class
// structs. Names are dot-hierarchical ("engine.shard3.queue_depth"), which
// gives free aggregation over subtrees (sum("engine.") = whole engine).
//
// Threading contract (deliberately lock-free): the simulation's serial
// thread owns every write - handles are plain std::uint64_t bumps, cheap
// enough for the fast path. The parallel shard-stepping path (PR 2) never
// touches the registry; per-shard state is *pulled* into it from the serial
// collection pass (CamBackend::record_telemetry), so counter values are
// byte-identical for any step_threads setting. Snapshots read on the same
// thread between cycles.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dspcam::telemetry {

/// Monotonic event count. Plain increment, no locks.
class Counter {
 public:
  void inc() noexcept { ++value_; }
  void add(std::uint64_t n) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

  /// Pull-model helper: raises the counter to `total` (an externally
  /// accumulated absolute count). Ignored when `total` is behind the
  /// current value, so periodic re-publication is idempotent.
  void update_to(std::uint64_t total) noexcept {
    if (total > value_) value_ = total;
  }

  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depth, credits, headroom).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  std::int64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Log2-bucketed latency/size histogram with percentile estimation.
///
/// Bucket b >= 1 covers [2^(b-1), 2^b - 1]; bucket 0 holds exact zeros, so
/// there are kBuckets = 66 fixed buckets for the full uint64 range. record()
/// is a handful of arithmetic ops and one array bump - fast-path safe.
/// Quantiles are estimated by linear interpolation inside the owning bucket
/// and clamped to the observed [min, max], so p50/p95/p99 are exact for
/// constant streams and within one power of two otherwise.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 66;

  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t sum() const noexcept { return sum_; }

  /// Estimated value at quantile q in [0, 1].
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p95() const noexcept { return quantile(0.95); }
  double p99() const noexcept { return quantile(0.99); }

  /// Bucket geometry (for tests and exporters).
  static unsigned bucket_index(std::uint64_t value) noexcept;
  static std::uint64_t bucket_lo(unsigned bucket) noexcept;
  static std::uint64_t bucket_hi(unsigned bucket) noexcept;
  std::uint64_t bucket_count(unsigned bucket) const;

  /// Human-readable one-liner ("n=100 min=7 p50=7 p95=7 p99=7 max=9").
  std::string summary() const;

  /// Pull-model helper (the histogram analogue of Counter::update_to):
  /// adopts `source`'s full state when it has seen at least as many samples
  /// as this histogram, so periodic re-publication of an externally owned
  /// histogram is idempotent - and a registry reset() between publications
  /// is healed at the next one. Ignored when `source` is behind (a stale
  /// snapshot must never roll published state back).
  void update_to(const Histogram& source) noexcept;

  void reset() noexcept;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Owns every metric of one deployment, keyed by hierarchical name.
///
/// Lookup (counter()/gauge()/histogram()) is a map find plus lazy creation;
/// hot paths call it once at attach time and keep the returned reference,
/// which stays valid for the registry's lifetime. A name registered as one
/// kind cannot be re-registered as another (ConfigError).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Lookup without creation; nullptr when absent or a different kind.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Sum of every counter at `prefix` exactly or inside its subtree
  /// ("engine" matches "engine" and "engine.shard0.issued", not "engines";
  /// "engine.shard1" matches neither "engine.shard10" nor its subtree). A
  /// trailing dot is accepted and equivalent ("engine." == "engine").
  std::uint64_t sum_counters(std::string_view prefix) const;

  /// Subtree sum restricted to counters whose name ends in `suffix` on a
  /// dot boundary: sum_counters("engine", "parity_flagged") adds
  /// "engine.shard0.parity_flagged" but not "engine.no_parity_flagged".
  /// An empty suffix matches everything (same as the one-argument form).
  std::uint64_t sum_counters(std::string_view prefix,
                             std::string_view suffix) const;

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One JSON object ({"counters":{...},"gauges":{...},"histograms":{...}}),
  /// keys sorted, deterministic across runs.
  std::string to_json() const;

  /// Multi-line human-readable dump for end-of-run reports.
  std::string pretty() const;

  /// Writes to_json() to `path`. Throws ConfigError on open failure.
  void write_json(const std::string& path) const;

  /// Zeroes every metric (names and handles stay registered and valid).
  void reset();

 private:
  void check_unique(const std::string& name, const char* kind) const;

  // unique_ptr values keep handle references stable across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Writes full registry snapshots to a JSON-lines file on a cycle cadence:
/// each line is {"cycle": C, "metrics": <registry JSON>}. The driver calls
/// maybe_write() once per poll; nothing is written between deadlines.
class SnapshotWriter {
 public:
  /// Throws ConfigError when the file cannot be opened or `every_cycles`
  /// is zero.
  SnapshotWriter(const MetricRegistry& registry, const std::string& path,
                 std::uint64_t every_cycles);

  /// Appends a snapshot when `cycle` has reached the next deadline.
  /// Returns true when a line was written.
  bool maybe_write(std::uint64_t cycle);

  /// Appends a snapshot unconditionally (end-of-run flush).
  void write(std::uint64_t cycle);

  std::uint64_t snapshots_written() const noexcept { return written_; }

 private:
  const MetricRegistry* registry_;
  std::string path_;
  std::uint64_t every_cycles_;
  std::uint64_t next_deadline_ = 0;
  std::uint64_t written_ = 0;

  /// Held open for the writer's lifetime and flushed after every record, so
  /// a crashed run keeps every snapshot it logged (the destructor's close
  /// is a formality, not the only flush point). Reopening per write - the
  /// old behaviour - left the last records in libc buffers on abort.
  std::ofstream out_;
};

}  // namespace dspcam::telemetry
