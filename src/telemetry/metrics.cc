#include "src/telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>

#include "src/common/error.h"

namespace dspcam::telemetry {

// --- Histogram. ---

unsigned Histogram::bucket_index(std::uint64_t value) noexcept {
  // 0 -> bucket 0; otherwise bucket = bit_width(v), so bucket b covers
  // [2^(b-1), 2^b - 1].
  return value == 0 ? 0 : static_cast<unsigned>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_lo(unsigned bucket) noexcept {
  if (bucket <= 1) return bucket;  // bucket 0 = {0}, bucket 1 starts at 1
  if (bucket >= 65) return ~std::uint64_t{0};  // unreachable guard slot
  return std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Histogram::bucket_hi(unsigned bucket) noexcept {
  if (bucket == 0) return 0;
  // bit_width never exceeds 64, so bucket 64 tops out the u64 range and the
  // 66th slot is an unreachable guard. Shifting by >= 64 is UB, so both top
  // buckets clamp instead of shifting.
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t Histogram::bucket_count(unsigned bucket) const {
  if (bucket >= kBuckets) {
    throw ConfigError("Histogram::bucket_count: bucket index out of range");
  }
  return buckets_[bucket];
}

void Histogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max_);
  // Rank of the q-th sample (1-based), then walk the buckets to find it and
  // interpolate linearly inside the owning bucket's value range.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (seen + buckets_[b] < rank) {
      seen += buckets_[b];
      continue;
    }
    const double lo = static_cast<double>(bucket_lo(b));
    const double hi = static_cast<double>(bucket_hi(b));
    const double frac = buckets_[b] <= 1
                            ? 0.0
                            : static_cast<double>(rank - seen - 1) /
                                  static_cast<double>(buckets_[b] - 1);
    double v = lo + frac * (hi - lo);
    // The observed extrema are exact; never report outside them.
    v = std::max(v, static_cast<double>(min()));
    v = std::min(v, static_cast<double>(max_));
    return v;
  }
  return static_cast<double>(max_);
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu min=%llu p50=%.0f p95=%.0f p99=%.0f max=%llu",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(min()), p50(), p95(), p99(),
                static_cast<unsigned long long>(max_));
  return buf;
}

void Histogram::update_to(const Histogram& source) noexcept {
  if (source.count_ < count_) return;  // stale snapshot: keep published state
  *this = source;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b = 0;
  count_ = 0;
  sum_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
}

// --- MetricRegistry. ---

void MetricRegistry::check_unique(const std::string& name, const char* kind) const {
  if (name.empty()) throw ConfigError("MetricRegistry: empty metric name");
  const bool taken =
      (counters_.count(name) != 0 && std::string_view(kind) != "counter") ||
      (gauges_.count(name) != 0 && std::string_view(kind) != "gauge") ||
      (histograms_.count(name) != 0 && std::string_view(kind) != "histogram");
  if (taken) {
    throw ConfigError("MetricRegistry: metric '" + name +
                      "' already registered as a different kind than " + kind);
  }
}

Counter& MetricRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  check_unique(name, "counter");
  return *counters_.emplace(name, std::make_unique<Counter>()).first->second;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  check_unique(name, "gauge");
  return *gauges_.emplace(name, std::make_unique<Gauge>()).first->second;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  check_unique(name, "histogram");
  return *histograms_.emplace(name, std::make_unique<Histogram>()).first->second;
}

const Counter* MetricRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricRegistry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

bool in_subtree(std::string_view name, std::string_view prefix) {
  // "engine." means the same subtree as "engine" (the header advertises the
  // trailing-dot form); without this strip it would match nothing, since the
  // boundary check below expects the prefix to end on a name component.
  while (!prefix.empty() && prefix.back() == '.') prefix.remove_suffix(1);
  if (prefix.empty()) return true;
  if (name.size() < prefix.size() || name.substr(0, prefix.size()) != prefix) {
    return false;
  }
  // Component boundary: "engine.shard1" must not absorb "engine.shard10.*".
  return name.size() == prefix.size() || name[prefix.size()] == '.';
}

bool ends_component(std::string_view name, std::string_view suffix) {
  if (suffix.empty()) return true;
  if (name.size() < suffix.size() ||
      name.substr(name.size() - suffix.size()) != suffix) {
    return false;
  }
  return name.size() == suffix.size() ||
         name[name.size() - suffix.size() - 1] == '.';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::uint64_t MetricRegistry::sum_counters(std::string_view prefix) const {
  return sum_counters(prefix, std::string_view{});
}

std::uint64_t MetricRegistry::sum_counters(std::string_view prefix,
                                           std::string_view suffix) const {
  std::uint64_t total = 0;
  for (const auto& [name, c] : counters_) {
    if (in_subtree(name, prefix) && ends_component(name, suffix)) {
      total += c->value();
    }
  }
  return total;
}

std::string MetricRegistry::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": " + std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": " + std::to_string(g->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"min\": " + std::to_string(h->min()) +
           ", \"max\": " + std::to_string(h->max()) +
           ", \"mean\": " + fmt_double(h->mean()) +
           ", \"p50\": " + fmt_double(h->p50()) +
           ", \"p95\": " + fmt_double(h->p95()) +
           ", \"p99\": " + fmt_double(h->p99()) + "}";
  }
  out += "}}";
  return out;
}

std::string MetricRegistry::pretty() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " = " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " = " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + ": " + h->summary() + "\n";
  }
  return out;
}

void MetricRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("MetricRegistry::write_json: cannot open " + path);
  out << to_json() << "\n";
}

void MetricRegistry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

// --- SnapshotWriter. ---

SnapshotWriter::SnapshotWriter(const MetricRegistry& registry,
                               const std::string& path,
                               std::uint64_t every_cycles)
    : registry_(&registry), path_(path), every_cycles_(every_cycles) {
  if (every_cycles == 0) {
    throw ConfigError("SnapshotWriter: cadence must be >= 1 cycle");
  }
  out_.open(path_, std::ios::trunc);
  if (!out_) throw ConfigError("SnapshotWriter: cannot open " + path);
}

bool SnapshotWriter::maybe_write(std::uint64_t cycle) {
  if (cycle < next_deadline_) return false;
  write(cycle);
  next_deadline_ = cycle + every_cycles_;
  return true;
}

void SnapshotWriter::write(std::uint64_t cycle) {
  out_ << "{\"cycle\": " << cycle << ", \"metrics\": " << registry_->to_json()
       << "}\n";
  out_.flush();  // crash-safe: every record reaches the OS before we move on
  ++written_;
}

}  // namespace dspcam::telemetry
