#include "src/telemetry/jsonv.h"

#include <cctype>

namespace dspcam::telemetry::jsonv {

namespace {

/// Recursive-descent JSON scanner over a string_view.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  Result run() {
    skip_ws();
    if (!value()) return fail();
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after document";
      return fail();
    }
    Result r;
    r.ok = true;
    return r;
  }

 private:
  Result fail() const {
    Result r;
    r.ok = false;
    r.error_offset = pos_;
    r.error = error_.empty() ? "malformed JSON" : error_;
    return r;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      error_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') {
      error_ = "expected string";
      return false;
    }
    ++pos_;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
              error_ = "bad \\u escape";
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          error_ = "bad escape character";
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        error_ = "raw control character in string";
        return false;
      }
    }
    error_ = "unterminated string";
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      error_ = "expected digit";
      return false;
    }
    // Strict JSON: the integer part is "0" or starts with a nonzero digit.
    if (peek() == '0') {
      ++pos_;
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        error_ = "leading zero in number";
        return false;
      }
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        error_ = "expected fraction digits";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        error_ = "expected exponent digits";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    if (eof()) {
      error_ = "unexpected end of document";
      return false;
    }
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        error_ = "expected ':' in object";
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or ']' in array";
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result validate(std::string_view text) { return Scanner(text).run(); }

bool has_top_level_key(std::string_view text, std::string_view key) {
  if (!validate(text).ok) return false;
  // Structural scan: walk the top-level object, tracking nesting depth, and
  // compare keys at depth 1 only.
  std::size_t i = 0;
  while (i < text.size() && text[i] != '{') ++i;
  if (i == text.size()) return false;
  int depth = 0;
  bool in_string = false;
  bool expecting_key = false;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '{':
      case '[':
        ++depth;
        expecting_key = c == '{';
        break;
      case '}':
      case ']':
        --depth;
        break;
      case ',':
        if (depth == 1) expecting_key = true;
        break;
      case ':':
        if (depth == 1) expecting_key = false;
        break;
      case '"': {
        if (depth == 1 && expecting_key) {
          const std::size_t start = i + 1;
          std::size_t end = start;
          while (end < text.size() && text[end] != '"') {
            if (text[end] == '\\') ++end;
            ++end;
          }
          if (text.substr(start, end - start) == key) return true;
          i = end;
        } else {
          in_string = true;
        }
        break;
      }
      default:
        break;
    }
  }
  return false;
}

}  // namespace dspcam::telemetry::jsonv
