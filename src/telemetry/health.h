// HealthMonitor: declarative SLO rules evaluated over the MetricRegistry.
//
// PR 4's telemetry is passive - counters and gauges accumulate but nothing
// watches them. The health monitor closes that loop: each rule names one
// metric (or a counter subtree) and a predicate - gauge threshold, counter
// rate over the rolling window between evaluations, or histogram
// percentile - plus *hysteresis*: a trip threshold and a separate clear
// threshold, so a value hovering near the line does not flap the rule. Each
// rule carries a severity and publishes its own state back into the same
// registry (`health.<rule>.state` 0/1 gauge, `health.<rule>.trips` counter,
// `health.<rule>.value` last observed value) so snapshots, dashboards
// (tools/camtop) and black-box dumps all see rule state for free.
//
// Determinism contract: evaluate() runs on the simulation's serial thread at
// the driver's snapshot cadence, consumes only registry state (which is
// byte-identical across step_threads / eval modes / horizon schedules), and
// measures windows in simulation cycles - so rule transitions land on the
// same cycle no matter how the simulation is scheduled. Rules whose metric
// does not exist yet are inert (state stays ok) rather than an error, so one
// default rule pack works against any backend mix.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/telemetry/flight_recorder.h"  // Severity

namespace dspcam::telemetry {

class MetricRegistry;
class Counter;
class Gauge;

/// Declarative trip/clear rules over a MetricRegistry.
class HealthMonitor {
 public:
  enum class State { kOk = 0, kTripped = 1 };
  static const char* to_string(State state);

  enum class Predicate {
    kGaugeBelow,        ///< Trip when gauge < trip; clear when >= clear.
    kGaugeAbove,        ///< Trip when gauge > trip; clear when <= clear.
    kCounterRateAbove,  ///< Trip when counter delta / cycle window > trip.
    kSubtreeRateAbove,  ///< Like kCounterRateAbove over sum_counters(metric,
                        ///< suffix): every counter under the subtree whose
                        ///< leaf path ends in `suffix`.
    kQuantileAbove,     ///< Trip when histogram quantile(q) > trip.
  };

  struct Rule {
    std::string name;    ///< Unique rule id; metric-safe (published under
                         ///< "health.<name>.*").
    std::string metric;  ///< Metric name, or subtree prefix for
                         ///< kSubtreeRateAbove.
    Predicate predicate = Predicate::kGaugeAbove;
    double trip = 0.0;   ///< Crossing this trips the rule.
    double clear = 0.0;  ///< Recovering past this clears it (hysteresis).
    Severity severity = Severity::kWarn;
    double quantile = 0.99;  ///< kQuantileAbove only; in (0, 1].
    std::string suffix;      ///< kSubtreeRateAbove only; may be empty
                             ///< (whole subtree).
  };

  /// One state change observed by evaluate().
  struct Transition {
    std::string rule;
    State from = State::kOk;
    State to = State::kOk;
    std::uint64_t cycle = 0;
    double value = 0.0;  ///< The value that caused the transition.
    Severity severity = Severity::kWarn;
  };

  /// Tuning for add_default_rules(); defaults match the stock driver/engine
  /// metric names and a "worry when it is real" threshold posture.
  struct DefaultRuleOptions {
    std::string driver_prefix = "driver";
    std::string engine_prefix = "engine";
    std::string fault_prefix = "fault";
    /// The driver's stall budget; the stall rule trips below budget/4 and
    /// clears at budget/2.
    std::uint64_t stall_budget = std::uint64_t{1} << 20;
    double rob_backlog_trip = 512.0;
    double rob_backlog_clear = 64.0;
    /// Fusion barrier breaks per cycle (storm = batches constantly cut).
    double barrier_rate_trip = 0.25;
    double barrier_rate_clear = 0.05;
  };

  /// Rules publish their state into `registry`; it must outlive the monitor.
  explicit HealthMonitor(MetricRegistry& registry);

  MetricRegistry& registry() const noexcept { return *registry_; }

  /// Registers a rule. Throws ConfigError on empty/duplicate name, empty
  /// metric, inverted hysteresis (clear on the wrong side of trip), or a
  /// quantile outside (0, 1].
  void add_rule(const Rule& rule);

  /// The stock pack covering the known failure surfaces: stall_headroom,
  /// shard_quarantine, rob_backlog, parity_flags, fusion_barriers,
  /// scrub_silent.
  void add_default_rules(const DefaultRuleOptions& opts);
  void add_default_rules() { add_default_rules(DefaultRuleOptions{}); }

  /// Evaluates every rule against the registry at `cycle`; returns the
  /// transitions that happened (empty almost always). Rate rules use the
  /// window since their previous evaluation; a rule whose metric is missing
  /// (or whose rate window is zero cycles) keeps its state.
  std::vector<Transition> evaluate(std::uint64_t cycle);

  // --- Introspection. ---

  std::size_t rule_count() const noexcept { return rules_.size(); }
  std::vector<std::string> rule_names() const;
  /// Throw ConfigError for an unknown rule name.
  State state(const std::string& rule) const;
  std::uint64_t trips(const std::string& rule) const;
  double last_value(const std::string& rule) const;
  std::size_t tripped_count() const;
  std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// {"evaluations": N, "tripped": T, "rules": [{name, metric, severity,
  /// state, trips, value}, ...]} in rule registration order.
  std::string to_json() const;

  /// Clears all rule states, baselines and trip counts (rules stay
  /// registered; published trip counters reset via Counter::reset). For
  /// bench loops that reset the registry between repetitions.
  void reset();

 private:
  struct RuleState {
    Rule rule;
    State state = State::kOk;
    std::uint64_t trips = 0;
    double last_value = 0.0;
    bool has_baseline = false;     ///< Rate rules: first sample taken.
    std::uint64_t baseline = 0;    ///< Counter value at last evaluation.
    std::uint64_t baseline_cycle = 0;
    Gauge* m_state = nullptr;
    Counter* m_trips = nullptr;
    Gauge* m_value = nullptr;
  };

  /// Reads the rule's current value; `ready` is false when the metric is
  /// absent or a rate window has not opened yet.
  double read_value(RuleState& rs, std::uint64_t cycle, bool& ready);

  const RuleState& find(const std::string& rule) const;

  MetricRegistry* registry_;
  std::vector<RuleState> rules_;            ///< Registration order.
  std::map<std::string, std::size_t> index_;
  std::uint64_t evaluations_ = 0;
  Gauge* m_tripped_ = nullptr;
  Counter* m_evaluations_ = nullptr;
};

}  // namespace dspcam::telemetry
