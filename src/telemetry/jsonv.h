// Minimal JSON syntax validator (no DOM, no dependencies).
//
// The telemetry exporters hand-serialise JSON; these helpers let tests and
// the CI trace checker prove the output is well-formed without pulling in a
// JSON library: validate() runs a full recursive-descent syntax check, and
// has_key() performs a structural top-level key probe. Good enough to gate
// "Perfetto will open this" in CI; not a general-purpose parser.
#pragma once

#include <string>
#include <string_view>

namespace dspcam::telemetry::jsonv {

/// Result of a validation pass.
struct Result {
  bool ok = false;
  std::size_t error_offset = 0;  ///< Byte offset of the first error.
  std::string error;             ///< Empty when ok.
};

/// Full syntax check of one JSON document (object, array, or scalar).
Result validate(std::string_view text);

/// True when `text` is a JSON object whose top level contains `key`
/// (structural scan: keys inside nested containers do not count).
bool has_top_level_key(std::string_view text, std::string_view key);

}  // namespace dspcam::telemetry::jsonv
