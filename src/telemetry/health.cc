#include "src/telemetry/health.h"

#include <cmath>
#include <cstdio>

#include "src/common/error.h"
#include "src/telemetry/metrics.h"

namespace dspcam::telemetry {

const char* HealthMonitor::to_string(State state) {
  return state == State::kTripped ? "tripped" : "ok";
}

HealthMonitor::HealthMonitor(MetricRegistry& registry) : registry_(&registry) {
  m_tripped_ = &registry_->gauge("health.tripped");
  m_evaluations_ = &registry_->counter("health.evaluations");
}

void HealthMonitor::add_rule(const Rule& rule) {
  if (rule.name.empty()) throw ConfigError("HealthMonitor: empty rule name");
  if (rule.metric.empty()) {
    throw ConfigError("HealthMonitor: rule '" + rule.name + "' has no metric");
  }
  if (index_.count(rule.name) != 0) {
    throw ConfigError("HealthMonitor: duplicate rule '" + rule.name + "'");
  }
  // Hysteresis must point the right way: a below-rule clears at or above its
  // trip line, every above-rule clears at or below it. Equal is allowed
  // (no hysteresis band).
  if (rule.predicate == Predicate::kGaugeBelow) {
    if (rule.clear < rule.trip) {
      throw ConfigError("HealthMonitor: rule '" + rule.name +
                        "' clears below its trip threshold");
    }
  } else if (rule.clear > rule.trip) {
    throw ConfigError("HealthMonitor: rule '" + rule.name +
                      "' clears above its trip threshold");
  }
  if (rule.predicate == Predicate::kQuantileAbove &&
      (rule.quantile <= 0.0 || rule.quantile > 1.0)) {
    throw ConfigError("HealthMonitor: rule '" + rule.name +
                      "' quantile must be in (0, 1]");
  }
  RuleState rs;
  rs.rule = rule;
  const std::string base = "health." + rule.name;
  rs.m_state = &registry_->gauge(base + ".state");
  rs.m_trips = &registry_->counter(base + ".trips");
  rs.m_value = &registry_->gauge(base + ".value");
  index_.emplace(rule.name, rules_.size());
  rules_.push_back(std::move(rs));
}

void HealthMonitor::add_default_rules(const DefaultRuleOptions& opts) {
  const std::string& drv = opts.driver_prefix;
  const std::string& eng = opts.engine_prefix;
  const std::string& flt = opts.fault_prefix;
  // Driver stall-headroom collapse: the watchdog's remaining budget fell to
  // a quarter; a trip here is the early warning before the SimError.
  add_rule({.name = "stall_headroom",
            .metric = drv + ".stall_headroom",
            .predicate = Predicate::kGaugeBelow,
            .trip = static_cast<double>(opts.stall_budget) / 4.0,
            .clear = static_cast<double>(opts.stall_budget) / 2.0,
            .severity = Severity::kCritical});
  // Any shard out of service is critical until it clears.
  add_rule({.name = "shard_quarantine",
            .metric = eng + ".quarantined_shards",
            .predicate = Predicate::kGaugeAbove,
            .trip = 0.0,
            .clear = 0.0,
            .severity = Severity::kCritical});
  // Reorder-buffer backlog: completions are parked waiting on a slow or
  // starved shard (credit starvation shows up here first).
  add_rule({.name = "rob_backlog",
            .metric = eng + ".rob.search_depth",
            .predicate = Predicate::kGaugeAbove,
            .trip = opts.rob_backlog_trip,
            .clear = opts.rob_backlog_clear,
            .severity = Severity::kWarn});
  // Parity flags anywhere under the engine subtree mean live bit corruption.
  add_rule({.name = "parity_flags",
            .metric = eng,
            .predicate = Predicate::kSubtreeRateAbove,
            .trip = 0.0,
            .clear = 0.0,
            .severity = Severity::kWarn,
            .suffix = "parity_flagged"});
  // Fusion barrier-break storm: write barriers cutting nearly every batch.
  add_rule({.name = "fusion_barriers",
            .metric = eng,
            .predicate = Predicate::kSubtreeRateAbove,
            .trip = opts.barrier_rate_trip,
            .clear = opts.barrier_rate_clear,
            .severity = Severity::kWarn,
            .suffix = "fusion.barrier_breaks"});
  // The scrubber repairing a corruption parity never saw is the worst
  // signal in the fault plane.
  add_rule({.name = "scrub_silent",
            .metric = flt + ".scrubber.silent",
            .predicate = Predicate::kCounterRateAbove,
            .trip = 0.0,
            .clear = 0.0,
            .severity = Severity::kCritical});
}

double HealthMonitor::read_value(RuleState& rs, std::uint64_t cycle,
                                 bool& ready) {
  ready = false;
  switch (rs.rule.predicate) {
    case Predicate::kGaugeBelow:
    case Predicate::kGaugeAbove: {
      const Gauge* g = registry_->find_gauge(rs.rule.metric);
      if (g == nullptr) return 0.0;
      ready = true;
      return static_cast<double>(g->value());
    }
    case Predicate::kQuantileAbove: {
      const Histogram* h = registry_->find_histogram(rs.rule.metric);
      if (h == nullptr) return 0.0;
      ready = true;
      return h->quantile(rs.rule.quantile);
    }
    case Predicate::kCounterRateAbove:
    case Predicate::kSubtreeRateAbove: {
      std::uint64_t cur = 0;
      if (rs.rule.predicate == Predicate::kCounterRateAbove) {
        const Counter* c = registry_->find_counter(rs.rule.metric);
        if (c == nullptr) return 0.0;
        cur = c->value();
      } else {
        cur = registry_->sum_counters(rs.rule.metric, rs.rule.suffix);
      }
      // First sight (or a registry reset rewinding the counter) only
      // establishes the baseline; the rate needs a full window.
      if (!rs.has_baseline || cur < rs.baseline) {
        rs.has_baseline = true;
        rs.baseline = cur;
        rs.baseline_cycle = cycle;
        return 0.0;
      }
      if (cycle <= rs.baseline_cycle) return 0.0;  // zero-width window
      const double rate = static_cast<double>(cur - rs.baseline) /
                          static_cast<double>(cycle - rs.baseline_cycle);
      rs.baseline = cur;
      rs.baseline_cycle = cycle;
      ready = true;
      return rate;
    }
  }
  return 0.0;
}

std::vector<HealthMonitor::Transition> HealthMonitor::evaluate(
    std::uint64_t cycle) {
  ++evaluations_;
  m_evaluations_->inc();
  std::vector<Transition> out;
  std::size_t tripped = 0;
  for (RuleState& rs : rules_) {
    bool ready = false;
    const double v = read_value(rs, cycle, ready);
    if (ready) {
      rs.last_value = v;
      rs.m_value->set(static_cast<std::int64_t>(std::llround(v)));
      const bool below = rs.rule.predicate == Predicate::kGaugeBelow;
      const bool trip_now = below ? v < rs.rule.trip : v > rs.rule.trip;
      const bool clear_now = below ? v >= rs.rule.clear : v <= rs.rule.clear;
      if (rs.state == State::kOk && trip_now) {
        rs.state = State::kTripped;
        ++rs.trips;
        rs.m_trips->inc();
        out.push_back({rs.rule.name, State::kOk, State::kTripped, cycle, v,
                       rs.rule.severity});
      } else if (rs.state == State::kTripped && clear_now) {
        rs.state = State::kOk;
        out.push_back({rs.rule.name, State::kTripped, State::kOk, cycle, v,
                       rs.rule.severity});
      }
    }
    rs.m_state->set(rs.state == State::kTripped ? 1 : 0);
    if (rs.state == State::kTripped) ++tripped;
  }
  m_tripped_->set(static_cast<std::int64_t>(tripped));
  return out;
}

const HealthMonitor::RuleState& HealthMonitor::find(
    const std::string& rule) const {
  auto it = index_.find(rule);
  if (it == index_.end()) {
    throw ConfigError("HealthMonitor: unknown rule '" + rule + "'");
  }
  return rules_[it->second];
}

std::vector<std::string> HealthMonitor::rule_names() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) out.push_back(rs.rule.name);
  return out;
}

HealthMonitor::State HealthMonitor::state(const std::string& rule) const {
  return find(rule).state;
}

std::uint64_t HealthMonitor::trips(const std::string& rule) const {
  return find(rule).trips;
}

double HealthMonitor::last_value(const std::string& rule) const {
  return find(rule).last_value;
}

std::size_t HealthMonitor::tripped_count() const {
  std::size_t n = 0;
  for (const RuleState& rs : rules_) {
    if (rs.state == State::kTripped) ++n;
  }
  return n;
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string HealthMonitor::to_json() const {
  std::string out = "{\"evaluations\": " + std::to_string(evaluations_) +
                    ", \"tripped\": " + std::to_string(tripped_count()) +
                    ", \"rules\": [";
  bool first = true;
  for (const RuleState& rs : rules_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"" + rs.rule.name + "\", \"metric\": \"" +
           rs.rule.metric + "\", \"severity\": \"" +
           telemetry::to_string(rs.rule.severity) + "\", \"state\": \"" +
           to_string(rs.state) + "\", \"trips\": " + std::to_string(rs.trips) +
           ", \"value\": " + fmt_double(rs.last_value) + "}";
  }
  out += "]}";
  return out;
}

void HealthMonitor::reset() {
  for (RuleState& rs : rules_) {
    rs.state = State::kOk;
    rs.trips = 0;
    rs.last_value = 0.0;
    rs.has_baseline = false;
    rs.baseline = 0;
    rs.baseline_cycle = 0;
    rs.m_state->set(0);
    rs.m_trips->reset();
    rs.m_value->set(0);
  }
  evaluations_ = 0;
  m_tripped_->set(0);
}

}  // namespace dspcam::telemetry
