#include "src/telemetry/flight_recorder.h"

#include <cstdio>
#include <fstream>

#include "src/common/error.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"

namespace dspcam::telemetry {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kCritical: return "critical";
  }
  return "unknown";
}

const char* FlightRecorder::to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kHealthTrip: return "health_trip";
    case EventKind::kHealthClear: return "health_clear";
    case EventKind::kWatchdogTrip: return "watchdog_trip";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kRebuild: return "rebuild";
    case EventKind::kReshard: return "reshard";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kRestore: return "restore";
    case EventKind::kFaultPoke: return "fault_poke";
    case EventKind::kScrubSilent: return "scrub_silent";
    case EventKind::kCustom: return "custom";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(const Config& cfg) : cfg_(cfg) {
  if (cfg_.capacity == 0) {
    throw ConfigError("FlightRecorder: ring capacity must be >= 1");
  }
  ring_.reserve(cfg_.capacity);
}

void FlightRecorder::record(
    std::uint64_t cycle, EventKind kind, Severity severity, std::string what,
    std::vector<std::pair<std::string, std::uint64_t>> args) {
  Event ev;
  ev.seq = recorded_++;
  ev.cycle = cycle;
  ev.kind = kind;
  ev.severity = severity;
  ev.what = std::move(what);
  ev.args = std::move(args);
  if (ring_.size() < cfg_.capacity) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[ring_next_] = std::move(ev);
  ring_next_ = (ring_next_ + 1) % cfg_.capacity;
  ring_wrapped_ = true;
  ++dropped_;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_wrapped_) {
    for (std::size_t i = ring_next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
    for (std::size_t i = 0; i < ring_next_; ++i) out.push_back(ring_[i]);
  } else {
    out = ring_;
  }
  return out;
}

void FlightRecorder::clear() {
  ring_.clear();
  ring_next_ = 0;
  ring_wrapped_ = false;
  recorded_ = 0;
  dropped_ = 0;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FlightRecorder::dump_json(std::uint64_t cycle,
                                      const std::string& reason,
                                      const MetricRegistry* metrics,
                                      const SpanTracer* spans,
                                      const HealthMonitor* health) const {
  std::string out = "{\"kind\": \"dspcam.blackbox\", \"version\": 1";
  out += ", \"cycle\": " + std::to_string(cycle);
  out += ", \"reason\": \"" + json_escape(reason) + "\"";
  out += ", \"events_recorded\": " + std::to_string(recorded_);
  out += ", \"events_dropped\": " + std::to_string(dropped_);
  out += ", \"events\": [";
  bool first = true;
  for (const Event& ev : events()) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"seq\": " + std::to_string(ev.seq) +
           ", \"cycle\": " + std::to_string(ev.cycle) + ", \"kind\": \"" +
           to_string(ev.kind) + "\", \"severity\": \"" +
           telemetry::to_string(ev.severity) + "\", \"what\": \"" +
           json_escape(ev.what) + "\", \"args\": {";
    for (std::size_t i = 0; i < ev.args.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + json_escape(ev.args[i].first) +
             "\": " + std::to_string(ev.args[i].second);
    }
    out += "}}";
  }
  out += "]";
  out += ", \"health\": ";
  out += health != nullptr ? health->to_json() : "null";
  out += ", \"metrics\": ";
  out += metrics != nullptr ? metrics->to_json() : "null";
  out += ", \"spans\": ";
  if (spans == nullptr) {
    out += "null";
  } else {
    // Most-recent finished spans, capped at dump_spans, in span order.
    std::vector<Span> all = spans->finished_spans();
    const std::size_t begin =
        all.size() > cfg_.dump_spans ? all.size() - cfg_.dump_spans : 0;
    out += "[";
    for (std::size_t i = begin; i < all.size(); ++i) {
      if (i != begin) out += ",\n";
      out += "{\"name\": \"" + json_escape(all[i].name) +
             "\", \"track\": " + std::to_string(all[i].track) +
             ", \"start\": " + std::to_string(all[i].start) +
             ", \"end\": " + std::to_string(all[i].end) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

void FlightRecorder::write_dump(const std::string& path, std::uint64_t cycle,
                                const std::string& reason,
                                const MetricRegistry* metrics,
                                const SpanTracer* spans,
                                const HealthMonitor* health) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("FlightRecorder::write_dump: cannot open " + path);
  out << dump_json(cycle, reason, metrics, spans, health) << "\n";
}

}  // namespace dspcam::telemetry
