#include "src/telemetry/span.h"

#include <fstream>

#include "src/common/error.h"

namespace dspcam::telemetry {

SpanTracer::SpanTracer(const Config& cfg) : cfg_(cfg) {
  if (cfg_.capacity == 0) {
    throw ConfigError("SpanTracer: ring capacity must be >= 1");
  }
  if (cfg_.max_open == 0) {
    throw ConfigError("SpanTracer: max_open must be >= 1");
  }
  if (cfg_.counter_capacity == 0) {
    throw ConfigError("SpanTracer: counter_capacity must be >= 1");
  }
  ring_.reserve(cfg_.capacity);
}

SpanTracer::SpanId SpanTracer::begin(std::string_view name, std::uint64_t track,
                                     std::uint64_t ts, bool record) {
  if (!record) return kNone;
  // Leak guard: a begin() whose end() never comes (dropped completion,
  // quarantined shard) must not grow the open table forever. Evict the
  // oldest open span; it counts as orphaned and is not exported.
  while (open_.size() >= cfg_.max_open) {
    open_.erase(open_.begin());
    ++orphan_evictions_;
  }
  const SpanId id = next_id_++;
  Span span;
  span.name.assign(name);
  span.track = track;
  span.start = ts;
  span.end = ts;
  open_.emplace(id, std::move(span));
  ++started_;
  return id;
}

void SpanTracer::arg(SpanId id, std::string_view key, std::uint64_t value) {
  if (id == kNone) return;
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.args.emplace_back(std::string(key), value);
}

void SpanTracer::end(SpanId id, std::uint64_t ts) {
  if (id == kNone) return;
  auto it = open_.find(id);
  if (it == open_.end()) return;  // orphaned by eviction; drop silently
  Span span = std::move(it->second);
  open_.erase(it);
  span.end = ts < span.start ? span.start : ts;
  push_finished(std::move(span));
  ++finished_;
}

void SpanTracer::push_finished(Span span) {
  if (ring_.size() < cfg_.capacity) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[ring_next_] = std::move(span);
  ring_next_ = (ring_next_ + 1) % cfg_.capacity;
  ring_wrapped_ = true;
  ++dropped_;
}

void SpanTracer::set_track_name(std::uint64_t track, std::string name) {
  track_names_[track] = std::move(name);
}

void SpanTracer::counter(std::string_view name, std::uint64_t ts,
                         std::int64_t value) {
  CounterSample sample;
  sample.name.assign(name);
  sample.ts = ts;
  sample.value = value;
  ++counters_recorded_;
  if (counters_.size() < cfg_.counter_capacity) {
    counters_.push_back(std::move(sample));
    return;
  }
  counters_[counters_next_] = std::move(sample);
  counters_next_ = (counters_next_ + 1) % cfg_.counter_capacity;
  counters_wrapped_ = true;
  ++counters_dropped_;
}

std::vector<CounterSample> SpanTracer::counter_samples() const {
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  if (counters_wrapped_) {
    for (std::size_t i = counters_next_; i < counters_.size(); ++i) {
      out.push_back(counters_[i]);
    }
    for (std::size_t i = 0; i < counters_next_; ++i) out.push_back(counters_[i]);
  } else {
    out = counters_;
  }
  return out;
}

std::vector<Span> SpanTracer::finished_spans() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (ring_wrapped_) {
    // Oldest-first: [ring_next_, end) then [0, ring_next_).
    for (std::size_t i = ring_next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
    for (std::size_t i = 0; i < ring_next_; ++i) out.push_back(ring_[i]);
  } else {
    out = ring_;
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string SpanTracer::chrome_json() const {
  // One cycle maps to one microsecond: the trace-event "ts"/"dur" unit.
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": " +
           std::to_string(track) + ", \"args\": {\"name\": \"" +
           json_escape(name) + "\"}}";
  }
  for (const Span& span : finished_spans()) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\": \"X\", \"name\": \"" + json_escape(span.name) +
           "\", \"cat\": \"dspcam\", \"pid\": 1, \"tid\": " +
           std::to_string(span.track) + ", \"ts\": " + std::to_string(span.start) +
           ", \"dur\": " + std::to_string(span.end - span.start);
    out += ", \"args\": {";
    for (std::size_t i = 0; i < span.args.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + json_escape(span.args[i].first) +
             "\": " + std::to_string(span.args[i].second);
    }
    out += "}}";
  }
  // Counter series ride on tid 0 - Perfetto groups "ph":"C" events by name,
  // not thread, so one tid keeps the span tracks uncluttered.
  for (const CounterSample& sample : counter_samples()) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\": \"C\", \"name\": \"" + json_escape(sample.name) +
           "\", \"pid\": 1, \"tid\": 0, \"ts\": " + std::to_string(sample.ts) +
           ", \"args\": {\"value\": " + std::to_string(sample.value) + "}}";
  }
  out += "], \"displayTimeUnit\": \"ms\"}";
  return out;
}

void SpanTracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("SpanTracer: cannot open " + path);
  out << chrome_json() << "\n";
}

void SpanTracer::clear() {
  open_.clear();
  ring_.clear();
  ring_next_ = 0;
  ring_wrapped_ = false;
  started_ = finished_ = dropped_ = orphan_evictions_ = 0;
  counters_.clear();
  counters_next_ = 0;
  counters_wrapped_ = false;
  counters_recorded_ = counters_dropped_ = 0;
}

}  // namespace dspcam::telemetry
