// Flight recorder: a bounded ring of typed, structured lifecycle events and
// the black-box dump written when something goes wrong.
//
// The metric registry answers "how much"; the span tracer answers "when was
// this request where"; neither preserves *what happened* once a run dies in
// a SimError. The flight recorder fills that hole: every layer of the stack
// appends its rare, load-bearing events - shard quarantine, watchdog trips,
// rebuild/reshard phases, checkpoint/restore, fault pokes, health-rule
// transitions - into one fixed-capacity ring, and on failure (or on demand)
// the recorder serialises a self-contained JSON "black box": the last N
// events plus the current metric snapshot, recent spans and health states.
// The dump is plain JSON (validated by jsonv in tests/CI), so a post-mortem
// needs nothing but the file.
//
// Threading contract: like MetricRegistry and SpanTracer, the recorder is
// written only from the simulation's serial thread (driver poll loop, engine
// submit/collect passes, the fault layer's cycle hook), so no locks are
// needed and - because every event is stamped with a simulation cycle, never
// wall-clock - the recorded history is byte-identical across step_threads
// settings, eval modes, and horizon batching schedules.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dspcam::telemetry {

class MetricRegistry;  // metrics.h
class SpanTracer;      // span.h
class HealthMonitor;   // health.h

/// Shared severity scale for flight-recorder events and health rules.
enum class Severity { kInfo = 0, kWarn = 1, kCritical = 2 };
const char* to_string(Severity severity);

/// Bounded ring of typed lifecycle events + black-box JSON dumps.
class FlightRecorder {
 public:
  /// What happened. One enum for the whole stack so dumps stay greppable;
  /// kCustom (with a descriptive `what`) covers anything not listed.
  enum class EventKind {
    kHealthTrip,    ///< A health rule crossed its trip threshold.
    kHealthClear,   ///< A tripped rule recovered past its clear threshold.
    kWatchdogTrip,  ///< CamDriver stall watchdog fired (SimError follows).
    kQuarantine,    ///< ShardedCamEngine took a shard out of service.
    kRebuild,       ///< Quarantined-shard rebuild (start/verified/failed).
    kReshard,       ///< Live resharding phase (begin/done).
    kCheckpoint,    ///< Whole-engine checkpoint captured.
    kRestore,       ///< Checkpoint restored into the engine.
    kFaultPoke,     ///< FaultInjector flipped a bit.
    kScrubSilent,   ///< Scrubber repaired a *silent* corruption.
    kCustom,        ///< Anything else; `what` carries the story.
  };
  static const char* to_string(EventKind kind);

  /// One recorded event. `seq` is the global record index (monotonic even
  /// after ring overwrites, so a dump shows how much history was lost).
  struct Event {
    std::uint64_t seq = 0;
    std::uint64_t cycle = 0;
    EventKind kind = EventKind::kCustom;
    Severity severity = Severity::kInfo;
    std::string what;
    std::vector<std::pair<std::string, std::uint64_t>> args;
  };

  struct Config {
    std::size_t capacity = 256;  ///< Events held; older ones are dropped.
    std::size_t dump_spans = 64; ///< Most-recent finished spans per dump.
  };

  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(const Config& cfg);  ///< ConfigError on capacity 0.

  const Config& config() const noexcept { return cfg_; }

  /// Appends one event (overwriting the oldest when the ring is full).
  void record(std::uint64_t cycle, EventKind kind, Severity severity,
              std::string what,
              std::vector<std::pair<std::string, std::uint64_t>> args = {});

  /// Events currently held, oldest first.
  std::vector<Event> events() const;

  std::uint64_t recorded() const noexcept { return recorded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t size() const noexcept { return ring_.size(); }

  /// Discards all events and zeroes the accounting.
  void clear();

  // --- Black box. ---

  /// Self-contained JSON dump: {"kind": "dspcam.blackbox", "version": 1,
  /// "cycle": ..., "reason": ..., "events": [...], "health": {...}|null,
  /// "metrics": {...}|null, "spans": [...]|null}. Optional sections are
  /// emitted as null when the matching pointer is absent. Deterministic for
  /// a deterministic run (cycle timestamps only, sorted registry keys).
  std::string dump_json(std::uint64_t cycle, const std::string& reason,
                        const MetricRegistry* metrics = nullptr,
                        const SpanTracer* spans = nullptr,
                        const HealthMonitor* health = nullptr) const;

  /// Writes dump_json() to `path`. Throws ConfigError on open failure.
  void write_dump(const std::string& path, std::uint64_t cycle,
                  const std::string& reason,
                  const MetricRegistry* metrics = nullptr,
                  const SpanTracer* spans = nullptr,
                  const HealthMonitor* health = nullptr) const;

 private:
  Config cfg_;
  std::vector<Event> ring_;   ///< Ring of cfg_.capacity.
  std::size_t ring_next_ = 0; ///< Next slot to overwrite once wrapped.
  bool ring_wrapped_ = false;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dspcam::telemetry
