// Request-span tracing with Chrome trace-event / Perfetto JSON export.
//
// Every sampled CamDriver ticket becomes a waterfall of spans as it moves
// through the stack:
//
//   track 0 "driver.tickets"   submit -> completion        (whole lifetime)
//   track 1 "driver.queue"     submit -> backend accept    (retry queueing)
//   track 2 "engine.beats"     dispatch -> reorder done    (sharded engine)
//   track 16+s "shard<s>"      sub-op issue -> collection  (per shard)
//
// Spans live in a bounded ring - a full ring overwrites the oldest finished
// span (counted in dropped()) so steady-state tracing never grows. The
// sampling knob records 1-in-N tickets so full-rate benches stay fast; an
// unsampled ticket costs one modulo test. Timestamps are simulation cycles,
// exported as microseconds (1 cycle = 1 us) so Perfetto / chrome://tracing
// open the file directly.
//
// Threading: like MetricRegistry, the tracer is written only from the
// simulation's serial thread (driver poll loop, engine submit/collect
// passes), so no locks are needed and traces are identical across
// step_threads settings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dspcam::telemetry {

/// One completed (or still-open) span.
struct Span {
  std::string name;
  std::uint64_t track = 0;  ///< Exported as the Chrome trace "tid".
  std::uint64_t start = 0;  ///< Cycle the span opened.
  std::uint64_t end = 0;    ///< Cycle the span closed (>= start).
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

/// One sample of a utilization counter series (queue depth, active blocks,
/// fusion batch width, ...). Exported as a Chrome trace counter event
/// ("ph":"C"), which Perfetto renders as a value-over-time heatline.
struct CounterSample {
  std::string name;       ///< Series name ("engine.shard0.queue_depth").
  std::uint64_t ts = 0;   ///< Cycle sampled.
  std::int64_t value = 0;
};

/// Bounded, sampled span recorder.
class SpanTracer {
 public:
  struct Config {
    std::size_t capacity = 8192;      ///< Finished-span ring size.
    std::uint64_t sample_every = 16;  ///< Record 1-in-N tickets (1 = all).
    std::size_t max_open = 1024;      ///< Open spans before the oldest is
                                      ///< force-orphaned (leak guard).
    std::size_t counter_capacity = 4096;  ///< Counter-sample ring size.
  };

  /// Identifies an open span. 0 is the reserved "not recorded" id, returned
  /// for unsampled work so callers can thread it through unconditionally.
  using SpanId = std::uint64_t;
  static constexpr SpanId kNone = 0;

  SpanTracer() : SpanTracer(Config{}) {}
  explicit SpanTracer(const Config& cfg);

  const Config& config() const noexcept { return cfg_; }

  /// Sampling decision for a ticket/sequence number. Deterministic: the
  /// same id always samples the same way.
  bool sampled(std::uint64_t id) const noexcept {
    return cfg_.sample_every != 0 && id % cfg_.sample_every == 0;
  }

  /// Opens a span. Returns kNone (and records nothing) when `record` is
  /// false, so call sites can pass sampled(ticket) straight through.
  SpanId begin(std::string_view name, std::uint64_t track, std::uint64_t ts,
               bool record = true);

  /// Attaches a key/value argument to an open span. No-op for kNone or an
  /// already-closed/orphaned id.
  void arg(SpanId id, std::string_view key, std::uint64_t value);

  /// Closes a span at `ts` and moves it into the finished ring. No-op for
  /// kNone or an unknown (orphaned) id.
  void end(SpanId id, std::uint64_t ts);

  /// Names a track in the exported trace (Chrome thread_name metadata).
  void set_track_name(std::uint64_t track, std::string name);

  /// Records one utilization counter sample. Series share one bounded ring
  /// (oldest sample dropped when full); within a series, callers sample at
  /// non-decreasing ts (the publish cadence), which trace_lint enforces on
  /// the exported file.
  void counter(std::string_view name, std::uint64_t ts, std::int64_t value);

  // --- Accounting. ---

  std::uint64_t started() const noexcept { return started_; }
  std::uint64_t finished() const noexcept { return finished_; }
  /// Finished spans pushed out of the full ring.
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Spans opened but never closed: still open now, or evicted from the
  /// open table after max_open newer spans piled up.
  std::uint64_t orphaned() const noexcept {
    return orphan_evictions_ + open_.size();
  }
  std::size_t open_count() const noexcept { return open_.size(); }

  /// Finished spans currently held (oldest first).
  std::vector<Span> finished_spans() const;

  /// Counter samples currently held (oldest first).
  std::vector<CounterSample> counter_samples() const;

  std::uint64_t counters_recorded() const noexcept { return counters_recorded_; }
  /// Counter samples pushed out of the full ring.
  std::uint64_t counters_dropped() const noexcept { return counters_dropped_; }

  // --- Export. ---

  /// Chrome trace-event JSON ({"traceEvents": [...]}) of every finished
  /// span plus every counter sample ("ph":"C" events), loadable by Perfetto
  /// and chrome://tracing. Open spans are not exported (they are orphans
  /// until end() runs).
  std::string chrome_json() const;

  /// Writes chrome_json() to `path`. Throws ConfigError on open failure.
  void write_chrome_json(const std::string& path) const;

  /// Discards all spans and zeroes the accounting (track names persist).
  void clear();

 private:
  void push_finished(Span span);

  Config cfg_;
  SpanId next_id_ = 1;

  std::map<SpanId, Span> open_;  ///< Ordered: begin order = id order.
  std::vector<Span> ring_;       ///< Finished spans, ring of cfg_.capacity.
  std::size_t ring_next_ = 0;    ///< Next slot to overwrite.
  bool ring_wrapped_ = false;

  std::vector<CounterSample> counters_;  ///< Ring of cfg_.counter_capacity.
  std::size_t counters_next_ = 0;
  bool counters_wrapped_ = false;
  std::uint64_t counters_recorded_ = 0;
  std::uint64_t counters_dropped_ = 0;

  std::map<std::uint64_t, std::string> track_names_;

  std::uint64_t started_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t orphan_evictions_ = 0;
};

}  // namespace dspcam::telemetry
