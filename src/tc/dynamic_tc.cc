#include "src/tc/dynamic_tc.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/graph/triangle.h"

namespace dspcam::tc {

DynamicTcModel::DynamicTcModel() : DynamicTcModel(Config{}) {}

DynamicTcModel::DynamicTcModel(const Config& cfg) : cfg_(cfg) {
  CamTcAccelerator check(cfg_.cam);  // validates the CAM geometry
  (void)check;
}

AccelResult DynamicTcModel::run(graph::VertexId n,
                                const std::vector<graph::Edge>& insertions) const {
  const MemoryModel mem(cfg_.memory);
  const CamTcAccelerator cam(cfg_.cam);
  const unsigned words_per_beat = cfg_.cam.bus_width / cfg_.cam.data_width;

  std::vector<std::vector<graph::VertexId>> adj(n);
  AccelResult r;
  r.freq_mhz = cfg_.freq_mhz;

  auto contains = [](const std::vector<graph::VertexId>& list, graph::VertexId v) {
    return std::binary_search(list.begin(), list.end(), v);
  };
  auto insert_sorted = [](std::vector<graph::VertexId>& list, graph::VertexId v) {
    list.insert(std::upper_bound(list.begin(), list.end(), v), v);
  };

  for (const auto& [a, b] : insertions) {
    if (a == b) continue;
    if (a >= n || b >= n) throw ConfigError("DynamicTcModel: vertex out of range");
    if (contains(adj[a], b)) continue;  // duplicate edge

    const auto& na = adj[a];
    const auto& nb = adj[b];
    const auto stats = graph::merge_stats(na, nb);
    r.triangles += stats.common;
    ++r.edges_processed;

    const std::uint64_t la = na.size();
    const std::uint64_t lb = nb.size();
    const std::uint64_t ll = std::max(la, lb);
    const std::uint64_t ls = std::min(la, lb);

    std::uint64_t cycles = 0;
    if (cfg_.engine == DynamicEngine::kMerge) {
      const std::uint64_t compute = stats.steps;
      const std::uint64_t memory = mem.fetch_cycles(la) + mem.fetch_cycles(lb);
      cycles = std::max(compute, memory) + cfg_.merge_per_edge_overhead;
      if (compute >= memory) {
        r.compute_bound_cycles += cycles;
      } else {
        r.memory_bound_cycles += cycles;
      }
    } else {
      // CAM path per insertion: reset + load the longer list (chunked if it
      // exceeds the CAM), then stream the shorter list as keys.
      const std::uint64_t cap = cfg_.cam.cam_entries;
      const std::uint64_t chunks = ll == 0 ? 1 : (ll + cap - 1) / cap;
      const unsigned m = cam.groups_for(std::min<std::uint64_t>(ll, cap));
      const unsigned rate = std::min(m, cfg_.cam.key_lanes);
      const std::uint64_t load =
          std::max(mem.fetch_cycles(ll), (ll + words_per_beat - 1) / words_per_beat) +
          chunks * cfg_.cam.per_vertex_turnaround;
      const std::uint64_t search =
          chunks * std::max<std::uint64_t>((ls + rate - 1) / rate, 1);
      const std::uint64_t fetch_short = chunks * mem.fetch_cycles(ls);
      cycles = load + std::max(search, fetch_short) + cfg_.cam.per_edge_overhead;
      if (search >= fetch_short) {
        r.compute_bound_cycles += cycles;
      } else {
        r.memory_bound_cycles += cycles;
      }
    }
    r.cycles += cycles;

    insert_sorted(adj[a], b);
    insert_sorted(adj[b], a);
  }
  return r;
}

}  // namespace dspcam::tc
