// Cross-validation of the TC cost model against the cycle-accurate CAM.
//
// The accelerator models in this library compute intersection *counts*
// analytically (so multi-million-edge graphs run in seconds). This helper
// executes the same per-edge flow on the real cycle-accurate CamUnit -
// reset, stream adj(u) in update beats, stream adj(v) as multi-key search
// beats, count hits - and returns the triangle count the hardware datapath
// produces. Tests require it to equal the analytic result exactly.
#pragma once

#include <cstdint>

#include "src/graph/csr.h"
#include "src/system/backend.h"
#include "src/tc/cam_accel.h"

namespace dspcam::tc {

/// Runs triangle counting through the cycle-accurate CamUnit built from
/// `cfg.unit_config()`. Intended for small graphs (every CAM beat is
/// simulated cycle by cycle). Lists longer than the CAM capacity are
/// chunked exactly as the cost model assumes.
std::uint64_t count_triangles_with_unit(const graph::CsrGraph& g,
                                        const CamTcAccelerator::Config& cfg = CamTcAccelerator::Config{});

/// Same per-edge flow over an arbitrary CamBackend via the async driver:
/// reset + group reconfigure per chunk, stream adj(u) as update beats,
/// stream adj(v) as multi-key search beats, count hits. Lets the LUT/BRAM
/// baseline backends and the sharded engine execute the exact same kernel
/// the DSP unit runs. Group count per chunk is clamped to the backend's
/// max_groups(). Lists longer than `chunk_capacity` (default: the backend's
/// capacity) are chunked.
std::uint64_t count_triangles_with_backend(const graph::CsrGraph& g,
                                           system::CamBackend& backend,
                                           std::uint64_t chunk_capacity = 0);

}  // namespace dspcam::tc
