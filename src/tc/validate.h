// Cross-validation of the TC cost model against the cycle-accurate CAM.
//
// The accelerator models in this library compute intersection *counts*
// analytically (so multi-million-edge graphs run in seconds). This helper
// executes the same per-edge flow on the real cycle-accurate CamUnit -
// reset, stream adj(u) in update beats, stream adj(v) as multi-key search
// beats, count hits - and returns the triangle count the hardware datapath
// produces. Tests require it to equal the analytic result exactly.
#pragma once

#include <cstdint>

#include "src/graph/csr.h"
#include "src/tc/cam_accel.h"

namespace dspcam::tc {

/// Runs triangle counting through the cycle-accurate CamUnit built from
/// `cfg.unit_config()`. Intended for small graphs (every CAM beat is
/// simulated cycle by cycle). Lists longer than the CAM capacity are
/// chunked exactly as the cost model assumes.
std::uint64_t count_triangles_with_unit(const graph::CsrGraph& g,
                                        const CamTcAccelerator::Config& cfg = CamTcAccelerator::Config{});

}  // namespace dspcam::tc
