#include "src/tc/validate.h"

#include <algorithm>
#include <vector>

#include "src/cam/unit.h"
#include "src/system/driver.h"

namespace dspcam::tc {

namespace {

void step(cam::CamUnit& unit) {
  unit.eval();
  unit.commit();
}

void drain(cam::CamUnit& unit, unsigned cycles) {
  for (unsigned i = 0; i < cycles; ++i) step(unit);
}

/// Streams `words` into the unit as full update beats and waits for them to
/// land.
void load_words(cam::CamUnit& unit, std::span<const graph::VertexId> words,
                std::uint64_t& seq) {
  const unsigned per_beat = unit.config().words_per_beat();
  std::size_t pos = 0;
  while (pos < words.size()) {
    const std::size_t n = std::min<std::size_t>(per_beat, words.size() - pos);
    cam::UnitRequest req;
    req.op = cam::OpKind::kUpdate;
    req.seq = seq++;
    for (std::size_t i = 0; i < n; ++i) req.words.push_back(words[pos + i]);
    unit.issue(std::move(req));
    step(unit);
    pos += n;
  }
  drain(unit, cam::CamUnit::update_latency() + 1);
}

/// Searches `keys` through all M groups, M keys per beat; returns hits.
std::uint64_t search_keys(cam::CamUnit& unit, std::span<const graph::VertexId> keys,
                          std::uint64_t& seq) {
  const unsigned m = unit.groups();
  std::uint64_t hits = 0;
  std::size_t pos = 0;
  std::uint64_t outstanding = 0;
  auto collect = [&] {
    if (unit.response().has_value()) {
      for (const auto& res : unit.response()->results) {
        if (res.hit) ++hits;
      }
      --outstanding;
    }
  };
  while (pos < keys.size()) {
    const std::size_t n = std::min<std::size_t>(m, keys.size() - pos);
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.seq = seq++;
    for (std::size_t i = 0; i < n; ++i) req.keys.push_back(keys[pos + i]);
    unit.issue(std::move(req));
    ++outstanding;
    step(unit);
    collect();
    pos += n;
  }
  while (outstanding > 0) {
    step(unit);
    collect();
  }
  return hits;
}

}  // namespace

std::uint64_t count_triangles_with_unit(const graph::CsrGraph& g,
                                        const CamTcAccelerator::Config& cfg) {
  const CamTcAccelerator accel(cfg);  // validates the configuration
  cam::CamUnit unit(cfg.unit_config());
  std::uint64_t seq = 1;
  std::uint64_t matches = 0;

  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    if (nu.empty()) continue;
    bool any_edge = false;
    for (graph::VertexId v : nu) {
      if (v > u) {
        any_edge = true;
        break;
      }
    }
    if (!any_edge) continue;

    const std::uint64_t cap = cfg.cam_entries;
    const std::uint64_t chunks = (nu.size() + cap - 1) / cap;
    const std::uint64_t chunk_len = std::min<std::uint64_t>(nu.size(), cap);
    const unsigned m = accel.groups_for(chunk_len);

    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * cap;
      const std::size_t len = std::min<std::size_t>(cap, nu.size() - lo);
      // Let the tail of the previous batch clear every pipeline register
      // before reconfiguring the groups.
      drain(unit, cam::CamUnit::update_latency() + 4);
      unit.configure_groups(m);  // also clears contents (reset)
      load_words(unit, nu.subspan(lo, len), seq);
      for (graph::VertexId v : nu) {
        if (v <= u) continue;
        matches += search_keys(unit, g.neighbors(v), seq);
      }
    }
  }
  return matches / 3;
}

namespace {

/// Streams `keys` as multi-key search beats through the driver and counts
/// the hits once every response has drained.
std::uint64_t search_hits(system::CamDriver& driver,
                          std::span<const graph::VertexId> keys) {
  const std::size_t per_beat =
      std::max<std::size_t>(driver.backend().max_keys_per_beat(), 1);
  std::size_t pos = 0;
  while (pos < keys.size()) {
    const std::size_t n = std::min(per_beat, keys.size() - pos);
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    for (std::size_t i = 0; i < n; ++i) req.keys.push_back(keys[pos + i]);
    driver.submit_async(std::move(req));
    pos += n;
  }
  driver.drain();
  std::uint64_t hits = 0;
  while (auto c = driver.try_pop_completion()) {
    for (const auto& res : c->results) {
      if (res.hit) ++hits;
    }
  }
  return hits;
}

}  // namespace

std::uint64_t count_triangles_with_backend(const graph::CsrGraph& g,
                                           system::CamBackend& backend,
                                           std::uint64_t chunk_capacity) {
  system::CamDriver driver(backend);
  driver.configure_groups(1);
  driver.reset();
  const std::uint64_t cap =
      chunk_capacity != 0 ? chunk_capacity : backend.capacity();
  std::uint64_t matches = 0;

  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    if (nu.empty()) continue;
    bool any_edge = false;
    for (graph::VertexId v : nu) {
      if (v > u) {
        any_edge = true;
        break;
      }
    }
    if (!any_edge) continue;

    const std::uint64_t chunks = (nu.size() + cap - 1) / cap;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * cap;
      const std::size_t len = std::min<std::size_t>(cap, nu.size() - lo);
      driver.reset();  // drop the previous chunk
      std::vector<cam::Word> words(nu.begin() + lo, nu.begin() + lo + len);
      driver.store(words);
      for (graph::VertexId v : nu) {
        if (v <= u) continue;
        matches += search_hits(driver, g.neighbors(v));
      }
    }
  }
  return matches / 3;
}

}  // namespace dspcam::tc
