// Merge-based triangle-counting baseline (the AMD Vitis graph library
// design the paper compares against, Section V-C).
//
// The baseline is a fine-grained pipeline that, per undirected edge (u, v),
// loads the two adjacency lists and intersects them with a sorted two-cursor
// merge at one comparison per cycle - the "inherently sequential" kernel
// whose O(n+m) per-edge cost the paper's CAM removes. Edges are processed
// in CSR order, so the u-side list is streamed once per vertex while the
// v-side list is fetched per edge; memory transfers overlap the pipeline,
// and a fixed number of per-edge bubbles models the offset->length->data
// dependency chain that even the optimized pipeline cannot hide.
//
// Cost per edge: max(merge_steps(adj(u), adj(v)), fetch(adj(v))) +
//                per_edge_overhead,
// plus once per vertex: fetch(adj(u)) amortised over its edges.
#pragma once

#include "src/graph/csr.h"
#include "src/tc/accel_result.h"
#include "src/tc/memory_model.h"

namespace dspcam::tc {

/// Cycle model of the Vitis-style merge-intersection TC accelerator.
class MergeTcAccelerator {
 public:
  struct Config {
    MemoryModel::Config memory;
    double freq_mhz = 300.0;        ///< Vitis kernels close ~300 MHz on the U250.
    unsigned per_edge_overhead = 8; ///< Pipeline bubbles per edge (dependency
                                    ///< chain: offset -> length -> data).
    unsigned pipeline_fill = 32;    ///< One-off startup cost.
  };

  MergeTcAccelerator();  // default Config
  explicit MergeTcAccelerator(const Config& cfg);

  const Config& config() const noexcept { return cfg_; }

  /// Counts triangles of the undirected graph `g` (full adjacency, each
  /// undirected edge visited once; matches per edge = common neighbours, so
  /// the total is exactly 3x the triangle count - divided out here).
  AccelResult run(const graph::CsrGraph& g) const;

 private:
  Config cfg_;
};

}  // namespace dspcam::tc
