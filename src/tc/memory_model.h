// Single-channel DDR4 memory model for the triangle-counting case study.
//
// The paper constrains both accelerators to one DDR4 channel of the U250
// (Section V-C) so the comparison is purely architectural. One channel's
// peak bandwidth (~19.2 GB/s) equals one 512-bit beat per 300 MHz kernel
// cycle, so memory cost is naturally expressed in kernel cycles:
//
//   fetch(list of L words) = ceil(L * word_bytes / 64) beats
//                            + request_overhead cycles
//
// The per-request overhead models DRAM row activation and AXI address
// latency as seen *in steady state with many outstanding reads* - a small
// number of cycles of lost throughput per random request, not the full
// ~40 ns idle latency (both accelerators keep dozens of requests in
// flight).
#pragma once

#include <cstdint>

namespace dspcam::tc {

/// Cost model of one DDR channel at kernel clock granularity.
class MemoryModel {
 public:
  struct Config {
    unsigned bus_bytes = 64;          ///< 512-bit data path.
    unsigned word_bytes = 4;          ///< 32-bit vertex ids.
    unsigned request_overhead = 1;    ///< Effective per-request cycles lost.
    unsigned channels = 1;            ///< DDR channels striped across (the
                                      ///< paper's evaluation uses 1; the
                                      ///< U250 has 4).
  };

  MemoryModel();  // default Config
  explicit MemoryModel(const Config& cfg);

  const Config& config() const noexcept { return cfg_; }

  /// Beats needed to stream `words` vertex ids (>= 1 for a nonempty list),
  /// striped across the configured channels.
  std::uint64_t beats(std::uint64_t words) const noexcept {
    const std::uint64_t bytes = words * cfg_.word_bytes;
    const std::uint64_t per_channel = cfg_.bus_bytes * cfg_.channels;
    return (bytes + per_channel - 1) / per_channel;
  }

  /// Total cycles to fetch one randomly-addressed list of `words` ids.
  /// Zero-length lists cost nothing (the offset pair already told the
  /// kernel there is no data).
  std::uint64_t fetch_cycles(std::uint64_t words) const noexcept {
    return words == 0 ? 0 : beats(words) + cfg_.request_overhead;
  }

  /// Words carried per beat.
  unsigned words_per_beat() const noexcept { return cfg_.bus_bytes / cfg_.word_bytes; }

 private:
  Config cfg_;
};

}  // namespace dspcam::tc
