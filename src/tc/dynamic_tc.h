// Incremental (dynamic-graph) triangle counting.
//
// The paper motivates its balanced update/search design with "applications
// that need immediate reflection of data changes, such as dynamic graph
// algorithms" (Section II-A). This model is that workload: edges arrive one
// at a time and the triangle count is maintained incrementally - inserting
// (u, v) adds exactly |N(u) cap N(v)| triangles.
//
// Unlike the static pass (cam_accel.h) there is no cross-edge batching: each
// insertion stands alone, so the CAM pays its list load per insertion and
// the merge baseline pays its full O(|N(u)|+|N(v)|) walk per insertion. This
// isolates the architectural contrast the paper cares about: the CAM's cost
// follows the *shorter* list (streamed as keys at the lane rate) while the
// merge follows the sum.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/builder.h"
#include "src/tc/accel_result.h"
#include "src/tc/cam_accel.h"
#include "src/tc/memory_model.h"

namespace dspcam::tc {

/// Which intersection engine handles each insertion.
enum class DynamicEngine { kCam, kMerge };

/// Cycle model of incremental triangle counting over an insertion stream.
class DynamicTcModel {
 public:
  struct Config {
    DynamicEngine engine = DynamicEngine::kCam;
    CamTcAccelerator::Config cam;    ///< CAM geometry/lanes (engine kCam).
    MemoryModel::Config memory;
    double freq_mhz = 300.0;
    unsigned merge_per_edge_overhead = 8;
  };

  DynamicTcModel();  // default Config
  explicit DynamicTcModel(const Config& cfg);

  const Config& config() const noexcept { return cfg_; }

  /// Plays the insertion stream (vertices < n; duplicate edges and
  /// self-loops are skipped free of charge) and returns the final triangle
  /// count plus modelled cycles. The count is exact - verified in tests
  /// against the static counters.
  AccelResult run(graph::VertexId n, const std::vector<graph::Edge>& insertions) const;

 private:
  Config cfg_;
};

}  // namespace dspcam::tc
