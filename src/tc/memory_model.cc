#include "src/tc/memory_model.h"

#include "src/common/error.h"

namespace dspcam::tc {

MemoryModel::MemoryModel() : MemoryModel(Config{}) {}

MemoryModel::MemoryModel(const Config& cfg) : cfg_(cfg) {
  if (cfg_.bus_bytes == 0 || cfg_.word_bytes == 0 ||
      cfg_.bus_bytes % cfg_.word_bytes != 0) {
    throw ConfigError("MemoryModel: bus width must be a multiple of the word size");
  }
  if (cfg_.channels == 0) throw ConfigError("MemoryModel: need >= 1 channel");
}

}  // namespace dspcam::tc
