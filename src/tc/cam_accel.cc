#include "src/tc/cam_accel.h"

#include <algorithm>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/error.h"
#include "src/graph/triangle.h"

namespace dspcam::tc {

cam::UnitConfig CamTcAccelerator::Config::unit_config() const {
  cam::UnitConfig u;
  u.block.cell.kind = cam::CamKind::kBinary;
  u.block.cell.data_width = data_width;
  u.block.block_size = block_size;
  u.block.bus_width = bus_width;
  u.block.encoding = cam::EncodingScheme::kPriorityIndex;
  u.unit_size = cam_entries / block_size;
  u.bus_width = bus_width;
  u.initial_groups = 1;
  return cam::UnitConfig::with_auto_timing(u);
}

CamTcAccelerator::CamTcAccelerator() : CamTcAccelerator(Config{}) {}

CamTcAccelerator::CamTcAccelerator(const Config& cfg) : cfg_(cfg) {
  if (cfg_.cam_entries == 0 || cfg_.block_size == 0 ||
      cfg_.cam_entries % cfg_.block_size != 0) {
    throw ConfigError("CamTcAccelerator: entries must be a multiple of the block size");
  }
  num_blocks_ = cfg_.cam_entries / cfg_.block_size;
  if (!is_pow2(num_blocks_)) {
    throw ConfigError("CamTcAccelerator: block count must be a power of two");
  }
  if (cfg_.key_lanes == 0) {
    throw ConfigError("CamTcAccelerator: need at least one key lane");
  }
  cfg_.unit_config().validate();
}

unsigned CamTcAccelerator::groups_for(std::uint64_t resident_len) const {
  // A list shorter than one block still occupies the whole block (paper
  // Section V-C), so the blocks needed are ceil(len / block_size), and M is
  // the largest power-of-two group count that leaves each group at least
  // that many blocks.
  const std::uint64_t len = std::max<std::uint64_t>(resident_len, 1);
  const auto blocks_needed = static_cast<unsigned>(
      std::min<std::uint64_t>((len + cfg_.block_size - 1) / cfg_.block_size,
                              num_blocks_));
  unsigned m = 1;
  while (m * 2 * blocks_needed <= num_blocks_) m *= 2;
  return m;
}

AccelResult CamTcAccelerator::run(const graph::CsrGraph& g) const {
  const MemoryModel mem(cfg_.memory);
  AccelResult r;
  r.freq_mhz = cfg_.freq_mhz;
  std::uint64_t matches = 0;
  const unsigned words_per_beat = cfg_.bus_width / cfg_.data_width;

  // The paper loads the *longer* list of each edge into the CAM and streams
  // the shorter as search keys. Grouping edges by their longer endpoint
  // amortises the CAM load across that vertex's edges (a hub's list is
  // loaded once and probed by all of its neighbours' short lists) - the
  // batching a CSR-order scheduler gets almost for free.
  struct WorkEdge {
    graph::VertexId resident;
    graph::VertexId other;
  };
  std::vector<WorkEdge> work;
  work.reserve(g.num_edges() / 2);
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    for (graph::VertexId v : g.neighbors(u)) {
      if (v <= u) continue;
      const bool u_longer = g.degree(u) >= g.degree(v);
      work.push_back(u_longer ? WorkEdge{u, v} : WorkEdge{v, u});
    }
  }
  std::sort(work.begin(), work.end(), [](const WorkEdge& a, const WorkEdge& b) {
    return a.resident < b.resident || (a.resident == b.resident && a.other < b.other);
  });

  graph::VertexId resident = g.num_vertices();  // none yet
  std::uint64_t chunks = 1;
  unsigned m = 1;
  for (const auto& e : work) {
    ++r.edges_processed;
    const auto nr = g.neighbors(e.resident);
    const auto no = g.neighbors(e.other);

    if (e.resident != resident) {
      resident = e.resident;
      chunks = nr.empty() ? 1 : (nr.size() + cfg_.cam_entries - 1) / cfg_.cam_entries;
      m = groups_for(std::min<std::uint64_t>(nr.size(), cfg_.cam_entries));
      // Load the resident list into every CAM group: the DDR stream feeds
      // the update bus (words_per_beat ids per cycle), overlapping the
      // fetch; plus the reset / update->search turnaround. A resident list
      // longer than the CAM is processed in chunk passes: the scheduler
      // loads chunk 1, replays every edge's keys, loads chunk 2, replays
      // again - so the whole load cost is paid once per chunk per resident
      // (not per edge).
      const std::uint64_t fetch = mem.fetch_cycles(nr.size());
      const std::uint64_t load = (nr.size() + words_per_beat - 1) / words_per_beat;
      r.cycles += std::max(fetch, load) + chunks * cfg_.per_vertex_turnaround;
    }

    matches += graph::intersect_sorted(nr, no);

    // Key streaming: up to min(M, key_lanes) keys compared per cycle (the
    // key-issue datapath is key_lanes wide; back-solved from the paper's
    // Table IX timings, which imply ~4 keys/cycle end to end). With a
    // chunked resident, the edge's keys are fetched and replayed once per
    // chunk pass.
    const unsigned rate = std::min(m, cfg_.key_lanes);
    const std::uint64_t fetch = chunks * mem.fetch_cycles(no.size());
    const std::uint64_t search =
        chunks * std::max<std::uint64_t>((no.size() + rate - 1) / rate, 1);
    if (search >= fetch) {
      r.cycles += search;
      r.compute_bound_cycles += search;
    } else {
      r.cycles += fetch;
      r.memory_bound_cycles += fetch;
    }
    r.cycles += cfg_.per_edge_overhead;
  }
  r.cycles += cfg_.pipeline_fill;
  r.triangles = matches / 3;
  return r;
}

}  // namespace dspcam::tc
