#include "src/tc/merge_accel.h"

#include <algorithm>

#include "src/graph/triangle.h"

namespace dspcam::tc {

MergeTcAccelerator::MergeTcAccelerator() : MergeTcAccelerator(Config{}) {}

MergeTcAccelerator::MergeTcAccelerator(const Config& cfg) : cfg_(cfg) {}

AccelResult MergeTcAccelerator::run(const graph::CsrGraph& g) const {
  const MemoryModel mem(cfg_.memory);
  AccelResult r;
  r.freq_mhz = cfg_.freq_mhz;
  std::uint64_t matches = 0;

  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    bool u_streamed = false;
    for (graph::VertexId v : nu) {
      if (v <= u) continue;  // each undirected edge once, u-major order
      ++r.edges_processed;
      if (!u_streamed) {
        // adj(u) is fetched once and kept in the pipeline's stream buffer
        // for all of u's edges.
        r.cycles += mem.fetch_cycles(nu.size());
        u_streamed = true;
      }
      const auto nv = g.neighbors(v);
      const auto stats = graph::merge_stats(nu, nv);
      matches += stats.common;
      const std::uint64_t compute = stats.steps;
      const std::uint64_t memory = mem.fetch_cycles(nv.size());
      if (compute >= memory) {
        r.cycles += compute;
        r.compute_bound_cycles += compute;
      } else {
        r.cycles += memory;
        r.memory_bound_cycles += memory;
      }
      r.cycles += cfg_.per_edge_overhead;
    }
  }
  r.cycles += cfg_.pipeline_fill;
  // Every triangle {a,b,c} is found exactly three times: once per edge as
  // the third vertex.
  r.triangles = matches / 3;
  return r;
}

}  // namespace dspcam::tc
