// Common result record for the triangle-counting accelerator models.
#pragma once

#include <cstdint>

namespace dspcam::tc {

/// Outcome of one accelerator run over one graph.
struct AccelResult {
  std::uint64_t triangles = 0;      ///< Exact triangle count.
  std::uint64_t cycles = 0;         ///< Modelled kernel cycles.
  double freq_mhz = 0;              ///< Kernel clock used for time conversion.
  std::uint64_t edges_processed = 0;///< Undirected edges the kernel iterated.

  // Diagnostic breakdown (cycles attributed to the binding resource).
  std::uint64_t memory_bound_cycles = 0;   ///< Edges where DDR was the bottleneck.
  std::uint64_t compute_bound_cycles = 0;  ///< Edges where the intersection was.

  /// Wall-clock milliseconds at the modelled frequency.
  double milliseconds() const noexcept {
    return freq_mhz == 0 ? 0 : static_cast<double>(cycles) / (freq_mhz * 1e3);
  }

  double cycles_per_edge() const noexcept {
    return edges_processed == 0
               ? 0
               : static_cast<double>(cycles) / static_cast<double>(edges_processed);
  }
};

}  // namespace dspcam::tc
