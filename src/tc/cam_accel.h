// CAM-based triangle-counting accelerator (paper Fig. 6, Section V).
//
// Architecture: the user kernels (Load edge / Load offset+length / Load
// adjacency lists) stream the CSR graph from one DDR channel into the CAM
// unit. Per the paper's configuration: 32-bit binary cells, block size 128,
// 512-bit system bus, priority encoding, 2K entries (one SLR, matching the
// baseline's single-channel constraint).
//
// Execution model: per edge, the *longer* adjacency list is loaded into the
// CAM and the shorter streams through as search keys (Section V-B). Edges
// are scheduled grouped by their longer endpoint, so a hub's list is loaded
// once and stays *resident* while every neighbour's short list probes it:
//
//   per resident vertex r: reset the unit, stream adj(r) into the CAM
//                  (words-per-beat ids/cycle), pick M = number of CAM
//                  groups by the resident list's length ("the number of
//                  groups is decided by the length of the longer list";
//                  lists < 128 occupy a whole block);
//   per edge (r,o): stream adj(o) as search keys at min(M, key_lanes)
//                  keys/cycle; every hit is a common neighbour.
//
// Lists longer than the CAM capacity are processed in chunks: each chunk is
// loaded in turn and the edge's keys replayed against it.
//
// Cost per edge: max(fetch(adj(o)), ceil(|adj(o)| / min(M, key_lanes))) +
// per-edge overhead; per resident vertex: max(fetch(adj(r)), load beats) +
// turnaround. Matches per edge = |adj(r) cap adj(o)|, so the run's total is
// 3x the triangle count, divided out at the end.
#pragma once

#include "src/cam/config.h"
#include "src/graph/csr.h"
#include "src/tc/accel_result.h"
#include "src/tc/memory_model.h"

namespace dspcam::tc {

/// Cycle model of the CAM-based TC accelerator.
class CamTcAccelerator {
 public:
  struct Config {
    unsigned cam_entries = 2048;    ///< Unit capacity (paper: 2K, one SLR).
    unsigned block_size = 128;      ///< Paper Section V-B.
    unsigned data_width = 32;
    unsigned bus_width = 512;
    MemoryModel::Config memory;
    double freq_mhz = 300.0;        ///< From the timing model at 2048x32.
    unsigned per_vertex_turnaround = 2;  ///< Reset + update->search gap,
                                         ///< amortised across double-buffered
                                         ///< groups.
    unsigned per_edge_overhead = 3; ///< Offset/length issue + result drain.
    unsigned key_lanes = 4;         ///< Width of the key-issue datapath in
                                    ///< keys/cycle; effective search rate is
                                    ///< min(M, key_lanes). Back-solved from
                                    ///< the paper's Table IX per-edge costs.
    unsigned pipeline_fill = 32;    ///< One-off startup cost.

    /// The equivalent CAM-unit configuration (for the resource/timing
    /// models and for validation against the cycle-accurate unit).
    cam::UnitConfig unit_config() const;
  };

  CamTcAccelerator();  // default Config
  explicit CamTcAccelerator(const Config& cfg);

  const Config& config() const noexcept { return cfg_; }

  /// Counts triangles of the undirected graph `g` under the cost model.
  AccelResult run(const graph::CsrGraph& g) const;

  /// Number of parallel query groups chosen for a resident list of length
  /// `resident_len` (paper: a list shorter than a block still occupies the
  /// whole block; M is the largest power-of-two group count whose groups
  /// can each hold the list).
  unsigned groups_for(std::uint64_t resident_len) const;

 private:
  Config cfg_;
  unsigned num_blocks_;
};

}  // namespace dspcam::tc
