// Ablation: triangle-counting scaling with DDR channels.
//
// The paper's comparison pins both accelerators to a single DDR channel
// ("limited to a single DDR channel ... within a single SLR") but notes the
// U250 "features four DDR4 memory channels ... providing ample external
// memory bandwidth". This ablation lifts the constraint: with 1/2/4
// channels striped, and the CAM's key-issue lanes provisioned to match
// (4 lanes per channel; the M=16 grouping supports it), the CAM accelerator
// converts bandwidth into throughput while the merge baseline cannot exceed
// its one comparison per cycle no matter how fast memory gets. The headline
// gap therefore *widens* with the memory system - the scalability argument
// of Section VI.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/graph/generators.h"
#include "src/tc/cam_accel.h"
#include "src/tc/merge_accel.h"

using namespace dspcam;

int main() {
  bench::banner("Ablation: TC execution vs DDR channel count (social stand-in)");

  Rng rng(777);
  const auto g = graph::community_graph(20000, 400000, 60, 0.85, rng);

  TextTable t({"Channels", "Key lanes", "CAM (ms)", "Baseline (ms)", "Speedup"});
  for (unsigned ch : {1u, 2u, 4u}) {
    tc::CamTcAccelerator::Config cc;
    cc.memory.channels = ch;
    cc.key_lanes = 4 * ch;  // provision lanes with bandwidth (M = 16 allows it)
    tc::MergeTcAccelerator::Config mc;
    mc.memory.channels = ch;
    const auto rc = tc::CamTcAccelerator(cc).run(g);
    const auto rm = tc::MergeTcAccelerator(mc).run(g);
    t.add_row({std::to_string(ch), std::to_string(cc.key_lanes),
               TextTable::num(rc.milliseconds(), 3),
               TextTable::num(rm.milliseconds(), 3),
               TextTable::num(rm.milliseconds() / rc.milliseconds(), 2) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "The merge baseline is stuck at one comparison per cycle no matter how\n"
      "fast memory gets; the CAM accelerator scales its key stream with the\n"
      "provisioned bandwidth (up to the M = 16 group limit), widening the\n"
      "gap - per-edge fixed costs are the next ceiling.\n");
  return 0;
}
