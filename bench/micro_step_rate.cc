// Simulation-engine step-rate microbenchmark (host performance, not FPGA
// performance): how many simulated cycles and searches per host second the
// two evaluation paths sustain, and how parallel shard stepping scales.
//
//   part 1  reference vs fast CamUnit on a saturating search stream at
//           {16x16, 64x64, 256x64} (blocks x cells/block) - the tentpole
//           speedup of the vectorized match kernel.
//   part 2  ShardedCamEngine at S in {1,4,8} with serial vs S-threaded
//           stepping - host wall-clock scaling of the per-cycle barrier
//           (bounded by the machine's core count; the JSON records
//           hardware_concurrency so trajectories are comparable).
//   part 3  telemetry overhead: the same sharded stream with the metric
//           registry + sampled span tracer attached, reported as a ratio
//           against the bare run (acceptance: within 10%). The JSON row
//           carries the registry snapshot under "telemetry".
//   part 4  safe-horizon ablation: the engine driven directly in fixed
//           free-run windows of K cycles (K in {1,4,16,64}) and with its
//           own conservative output_horizon() ("auto"), relative to
//           per-cycle stepping (K=1) - how much of the barrier cost the
//           batched stepping path recovers.
//   part 5  match-kernel ablation: the same saturating search stream per
//           geometry with the registry-selected specialized kernel vs the
//           generic sweep forced on the identical geometry
//           (BlockConfig::force_generic_kernel) - what the per-geometry
//           compiled kernels add on top of the generic fast path.
//           kind:"kernel" rows carry the kernel name so tools/bench_diff
//           attributes regressions to a kernel, not just a geometry.
//   part 6  multi-key match fusion ablation: a CamSystem with its request
//           FIFO kept topped up, at fusion width B in {1, 2, 4, 8}, on a
//           search-only stream and on a write mix (1 addressed write per 16
//           requests - each write a fusion barrier). kind:"fusion" rows
//           record the batch-occupancy mean and the speedup over B=1.
//   part 7  fused sweep->encode ablation (kernel level, DESIGN.md §14): the
//           same kernel's legacy path (raw sweep -> valid-AND into a BitVec
//           -> encode_match_lines) against its fused encode_fn, per
//           encoding scheme, at 64- and 256-cell depths, across the kernel
//           tiers (registry-selected, AOT-generated geometry pin, scalar
//           depth template). kind:"encode" rows carry the paired-ratio
//           speedup_vs_unfused; the 256-deep rows are the tentpole
//           acceptance figure (>= 1.3x median).
//
// Flags: --warmup N --repeat N --json <path>   (default path
// BENCH_step_rate.json so CI always collects the artifact).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/cam/encoder.h"
#include "src/cam/match_kernel.h"
#include "src/common/bitvec.h"
#include "src/cam/unit.h"
#include "src/system/cam_system.h"
#include "src/system/driver.h"
#include "src/system/sharded_engine.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"

namespace {

using namespace dspcam;
using Clock = std::chrono::steady_clock;

struct Rate {
  double cycles_per_sec = 0;
  double searches_per_sec = 0;
};

cam::UnitConfig unit_config(unsigned blocks, unsigned cells, cam::EvalMode mode,
                            cam::CamKind kind = cam::CamKind::kBinary,
                            unsigned data_width = 32) {
  cam::UnitConfig cfg;
  cfg.block.cell.kind = kind;
  cfg.block.cell.data_width = data_width;
  cfg.block.block_size = cells;
  cfg.block.bus_width = data_width * 16;
  cfg.block.eval_mode = mode;
  cfg.unit_size = blocks;
  cfg.bus_width = data_width * 16;
  return cfg;
}

/// The registry's answer for a config's geometry (what the blocks will run).
std::string kernel_name_for(const cam::UnitConfig& cfg) {
  if (cfg.block.eval_mode == cam::EvalMode::kReference) return "reference";
  cam::MatchKernelQuery q;
  q.kind = cfg.block.cell.kind;
  q.data_width = cfg.block.cell.data_width;
  q.block_size = cfg.block.block_size;
  q.force_generic =
      cfg.block.force_generic_kernel || cam::force_generic_kernel_env();
  return cam::select_match_kernel(q).name;
}

/// Preloads half the unit's capacity, then streams one search beat per
/// cycle for `cycles` cycles (II = 1, every block of the group active).
Rate search_stream_rate(const cam::UnitConfig& cfg, std::uint64_t cycles) {
  cam::CamUnit unit(cfg);
  const unsigned capacity = unit.capacity_per_group();
  const unsigned preload = capacity / 2;
  const unsigned per_beat = cfg.words_per_beat();
  unsigned stored = 0;
  while (stored < preload) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kUpdate;
    for (unsigned w = 0; w < per_beat && stored + w < preload; ++w) {
      req.words.push_back(stored + w);
    }
    stored += static_cast<unsigned>(req.words.size());
    unit.issue(std::move(req));
    bench::step(unit);
  }
  for (unsigned i = 0; i < cam::CamUnit::update_latency() + 2; ++i) bench::step(unit);

  std::uint64_t responses = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.keys.push_back(static_cast<cam::Word>(c % capacity));
    req.seq = c;
    unit.issue(std::move(req));
    bench::step(unit);
    if (unit.response().has_value()) ++responses;
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  Rate r;
  r.cycles_per_sec = static_cast<double>(cycles) / secs;
  r.searches_per_sec = static_cast<double>(responses) / secs;
  return r;
}

/// Streams S-key search beats into a sharded engine (the hash partitioner
/// spreads the keys, so all shards stay busy) and reports the engine's
/// simulated cycle rate. `effective_threads` (optional) receives the
/// engine's post-clamp worker count, so JSON rows from small hosts are
/// honest about how much parallelism actually ran.
Rate engine_stream_rate(unsigned shards, unsigned threads, std::uint64_t cycles,
                        telemetry::MetricRegistry* registry = nullptr,
                        telemetry::SpanTracer* tracer = nullptr,
                        unsigned* effective_threads = nullptr,
                        telemetry::HealthMonitor* health = nullptr,
                        telemetry::FlightRecorder* recorder = nullptr) {
  system::ShardedCamEngine::Config ec;
  ec.shards = shards;
  ec.step_threads = threads;
  ec.credits_per_shard = 64;
  system::CamSystem::Config sc;
  sc.unit = unit_config(16, 16, cam::EvalMode::kFast);
  system::ShardedCamEngine engine(ec, sc);
  if (effective_threads != nullptr) {
    *effective_threads = engine.effective_step_threads();
  }
  system::CamDriver driver(engine);
  if (registry != nullptr || tracer != nullptr) {
    driver.attach_telemetry(registry, tracer, /*snapshot_every=*/256);
  }
  if (health != nullptr) driver.attach_health(health);
  if (recorder != nullptr) driver.attach_flight_recorder(recorder);

  std::vector<cam::Word> words;
  words.reserve(static_cast<std::size_t>(shards) * 128);
  for (unsigned i = 0; i < shards * 128u; ++i) words.push_back(i);
  driver.store(words);

  const std::uint64_t start_cycles = engine.stats().cycles;
  std::uint64_t responses = 0;
  std::uint64_t key = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    for (unsigned k = 0; k < shards; ++k) req.keys.push_back(key++ % (shards * 128u));
    driver.submit_async(std::move(req));
    driver.poll();
    while (auto comp = driver.try_pop_completion()) {
      responses += comp->results.size();
    }
  }
  driver.drain();
  while (driver.try_pop_completion()) {
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const double stepped =
      static_cast<double>(engine.stats().cycles - start_cycles);
  Rate r;
  r.cycles_per_sec = stepped / secs;
  r.searches_per_sec = static_cast<double>(responses) / secs;
  return r;
}

/// Horizon ablation: drives the engine directly (no driver) with one S-key
/// search beat per window boundary, free-running `horizon` cycles between
/// boundaries via step_many (horizon 0 = the engine's own conservative
/// output_horizon()). Reports the simulated cycle rate.
double horizon_stream_rate(unsigned shards, unsigned threads,
                           std::uint64_t cycles, std::uint64_t horizon,
                           unsigned* effective_threads = nullptr) {
  system::ShardedCamEngine::Config ec;
  ec.shards = shards;
  ec.step_threads = threads;
  ec.credits_per_shard = 64;
  system::CamSystem::Config sc;
  sc.unit = unit_config(16, 16, cam::EvalMode::kFast);
  system::ShardedCamEngine engine(ec, sc);
  if (effective_threads != nullptr) {
    *effective_threads = engine.effective_step_threads();
  }

  // Preload shards*128 words; the hash partitioner spreads them out.
  const unsigned total = shards * 128u;
  std::uint64_t seq = 1;
  unsigned stored = 0;
  while (stored < total) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kUpdate;
    for (unsigned w = 0; w < shards && stored + w < total; ++w) {
      req.words.push_back(stored + w);
    }
    req.seq = seq++;
    const unsigned batch = static_cast<unsigned>(req.words.size());
    if (engine.try_submit(std::move(req))) stored += batch;
    engine.step();
    while (engine.try_pop_ack()) {
    }
  }
  for (unsigned i = 0; i < 16; ++i) {
    engine.step();
    while (engine.try_pop_ack()) {
    }
  }

  std::uint64_t key = 0;
  std::uint64_t remaining = cycles;
  const auto t0 = Clock::now();
  while (remaining > 0) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    for (unsigned k = 0; k < shards; ++k) req.keys.push_back(key++ % total);
    req.seq = seq++;
    (void)engine.try_submit(std::move(req));
    std::uint64_t k = horizon;
    if (k == 0) k = std::max<std::uint64_t>(1, engine.output_horizon());
    k = std::min(k, remaining);
    engine.step_many(k);
    remaining -= k;
    while (engine.try_pop_response()) {
    }
    while (engine.try_pop_ack()) {
    }
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(cycles) / secs;
}

struct Geometry {
  unsigned blocks;
  unsigned cells;
  std::uint64_t cycles;  ///< Simulated cycles per measured run.
};

struct FusionRate {
  double cycles_per_sec = 0;
  double searches_per_sec = 0;
  double occupancy_mean = 0;  ///< Mean staged-batch size actually formed.
};

/// Fusion ablation stream: a CamSystem whose request FIFO is kept topped up
/// (fusion can only batch requests that are actually queued), streaming
/// single-key searches - optionally with one addressed write per 16 requests,
/// each a write barrier that cuts the current batch short.
FusionRate fusion_stream_rate(unsigned blocks, unsigned cells,
                              std::size_t fusion_keys, bool write_mix,
                              std::uint64_t cycles) {
  system::CamSystem::Config sc;
  sc.unit = unit_config(blocks, cells, cam::EvalMode::kFast);
  sc.fusion_max_keys = fusion_keys;
  system::CamSystem sys(sc);

  const unsigned capacity = sys.capacity();
  const unsigned preload = capacity / 2;
  const unsigned per_beat = sys.words_per_beat();
  std::uint64_t seq = 1;
  unsigned stored = 0;
  while (stored < preload) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kUpdate;
    for (unsigned w = 0; w < per_beat && stored + w < preload; ++w) {
      req.words.push_back(stored + w);
    }
    req.seq = seq++;
    const unsigned batch = static_cast<unsigned>(req.words.size());
    if (sys.try_submit(std::move(req))) stored += batch;
    sys.step();
    while (sys.try_pop_ack()) {
    }
  }
  while (!sys.idle()) {
    sys.step();
    while (sys.try_pop_ack()) {
    }
  }

  std::uint64_t responses = 0, key = 0, submitted = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    while (!sys.request_fifo_full()) {
      cam::UnitRequest req;
      if (write_mix && (submitted & 15u) == 15u) {
        req.op = cam::OpKind::kUpdate;
        req.address = static_cast<std::uint32_t>(submitted % preload);
        req.words = {static_cast<cam::Word>(submitted)};
      } else {
        req.op = cam::OpKind::kSearch;
        req.keys.push_back(static_cast<cam::Word>(key++ % capacity));
      }
      req.seq = seq++;
      if (!sys.try_submit(std::move(req))) break;
      ++submitted;
    }
    sys.step();
    while (sys.try_pop_response()) ++responses;
    while (sys.try_pop_ack()) {
    }
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();

  FusionRate r;
  r.cycles_per_sec = static_cast<double>(cycles) / secs;
  r.searches_per_sec = static_cast<double>(responses) / secs;
  dspcam::telemetry::MetricRegistry reg;
  sys.record_telemetry(reg, "sys");
  if (const auto* h = reg.find_histogram("sys.fusion.batch_occupancy")) {
    r.occupancy_mean = h->mean();
  }
  return r;
}

/// Packed pre-edge arrays for the kernel-level encode ablation: `depth`
/// distinct stored words, the matching nmask plane (mask-free = the plain
/// width mask everywhere; masked = every 4th entry wildcards its low 2
/// bits), all entries valid, and an always-hit key schedule whose hit
/// position rotates over the full depth (so the priority scheme's early
/// exit sees the average case, not the best case).
struct EncodeWorkload {
  std::vector<std::uint64_t> stored, nmask, valid;
  std::vector<cam::Word> keys;
  unsigned depth = 0;
};

EncodeWorkload make_encode_workload(unsigned width, unsigned depth,
                                    bool mask_free) {
  EncodeWorkload w;
  w.depth = depth;
  const std::uint64_t full = (std::uint64_t{1} << width) - 1;
  w.stored.resize(depth);
  w.nmask.resize(depth);
  for (unsigned i = 0; i < depth; ++i) {
    w.stored[i] = i & full;
    w.nmask[i] =
        mask_free || (i % 4 != 0) ? full : (full & ~std::uint64_t{3});
  }
  w.valid.assign((depth + 63) / 64, ~std::uint64_t{0});
  if (depth % 64 != 0) w.valid.back() = (std::uint64_t{1} << (depth % 64)) - 1;
  w.keys.resize(1024);  // power of two: the hot loop indexes with a mask
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    w.keys[i] = w.stored[(i * 7 + 3) % depth];
  }
  return w;
}

/// Keeps the optimizer from deleting the measured loops' work.
volatile std::uint64_t g_encode_sink = 0;

/// Unfused baseline: the pre-fusion block path exactly - raw sweep,
/// valid-AND into a persistent BitVec one set_word at a time, then the
/// by-value encode_match_lines, whose returned BlockResponse is constructed
/// per call (under one-hot that includes the per-call raw-vector copy, the
/// allocation-and-rescan tax the fused plane exists to remove). Returns
/// encodes per host second.
double unfused_encode_rate(const cam::MatchKernel& k, const EncodeWorkload& w,
                           cam::EncodingScheme scheme, std::uint64_t iters) {
  const std::size_t words = w.valid.size();
  std::vector<std::uint64_t> sweep(words);
  BitVec bits(w.depth);
  cam::BlockResponse resp;
  const cam::QueryTag tag;
  std::uint64_t sum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const cam::Word key = w.keys[i & (w.keys.size() - 1)];
    k.fn(w.stored.data(), w.nmask.data(), key, w.depth, sweep.data());
    for (std::size_t j = 0; j < words; ++j) {
      bits.set_word(j, sweep[j] & w.valid[j]);
    }
    resp = cam::encode_match_lines(bits, scheme, tag);
    sum += resp.hit + resp.first_match + resp.match_count;
    if (scheme == cam::EncodingScheme::kOneHot) sum += resp.raw.words()[0];
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  g_encode_sink = g_encode_sink + sum;
  return static_cast<double>(iters) / secs;
}

/// Fused path: the kernel's encode_fn emits the finished EncodedMatch (and,
/// for one-hot, the valid-ANDed match words) in one pass.
double fused_encode_rate(const cam::MatchKernel& k, const EncodeWorkload& w,
                         cam::EncodingScheme scheme, std::uint64_t iters) {
  std::vector<std::uint64_t> onehot(w.valid.size());
  std::uint64_t* oh =
      scheme == cam::EncodingScheme::kOneHot ? onehot.data() : nullptr;
  cam::EncodedMatch enc;
  std::uint64_t sum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const cam::Word key = w.keys[i & (w.keys.size() - 1)];
    k.encode_fn(w.stored.data(), w.nmask.data(), w.valid.data(), key, w.depth,
                scheme, enc, oh);
    sum += enc.hit + enc.first_match + enc.match_count;
    if (oh != nullptr) sum += onehot[0];
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  g_encode_sink = g_encode_sink + sum;
  return static_cast<double>(iters) / secs;
}

/// Registry lookup by exact kernel name (nullptr when absent - e.g. an AOT
/// pin this geometry set does not carry).
const cam::MatchKernel* kernel_named(const char* name) {
  for (const cam::MatchKernel& k : cam::match_kernel_registry()) {
    if (std::string(name) == k.name) return &k;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt =
      dspcam::bench::BenchOptions::from_args(argc, argv, "BENCH_step_rate.json");
  auto log = dspcam::bench::JsonLog::from_options(opt);

  dspcam::bench::banner("Two-speed engine: simulated step rate (host perf)");
  std::printf("warmup %u, repeat %u, values are medians\n\n", opt.warmup, opt.repeat);

  // Part 1: reference vs fast evaluation path.
  const Geometry geometries[] = {
      {16, 16, 50'000}, {64, 64, 10'000}, {256, 64, 4'000}};
  std::printf("%-10s %-10s %14s %14s %10s\n", "unit", "mode", "cycles/s",
              "searches/s", "speedup");
  for (const auto& g : geometries) {
    char label[32];
    std::snprintf(label, sizeof(label), "%ux%u", g.blocks, g.cells);
    double ref_median = 0;
    for (const auto mode :
         {dspcam::cam::EvalMode::kReference, dspcam::cam::EvalMode::kFast}) {
      const auto [stats, sps_stats] = dspcam::bench::measure_repeated_pair(opt, [&] {
        const Rate r =
            search_stream_rate(unit_config(g.blocks, g.cells, mode), g.cycles);
        return std::pair<double, double>{r.cycles_per_sec, r.searches_per_sec};
      });
      const bool fast = mode == dspcam::cam::EvalMode::kFast;
      const double speedup = fast && ref_median > 0 ? stats.median / ref_median : 0;
      if (!fast) ref_median = stats.median;
      char ratio[32] = "-";
      if (fast) std::snprintf(ratio, sizeof(ratio), "%.2fx", speedup);
      std::printf("%-10s %-10s %14.0f %14.0f %10s\n", label,
                  dspcam::cam::to_string(mode).c_str(), stats.median,
                  sps_stats.median, ratio);
      auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
      row.str("kind", "eval_mode")
          .str("unit", label)
          .str("mode", dspcam::cam::to_string(mode))
          .str("kernel", kernel_name_for(unit_config(g.blocks, g.cells, mode)))
          .num("blocks", static_cast<std::uint64_t>(g.blocks))
          .num("cells_per_block", static_cast<std::uint64_t>(g.cells))
          .num("sim_cycles", g.cycles);
      dspcam::bench::add_stats(row, "cycles_per_sec", stats);
      dspcam::bench::add_stats(row, "searches_per_sec", sps_stats);
      if (fast) row.num("speedup_vs_reference", speedup);
      log.emit(row);
    }
  }

  // Part 2: parallel shard stepping.
  std::printf("\n%-8s %-10s %14s %14s %10s\n", "shards", "threads", "cycles/s",
              "searches/s", "vs serial");
  const unsigned cores = std::thread::hardware_concurrency();
  for (const unsigned shards : {1u, 4u, 8u}) {
    double serial_median = 0;
    for (const unsigned threads : {1u, shards}) {
      if (threads == 1 && shards == 1 && serial_median > 0) continue;
      unsigned effective = threads;
      const auto [stats, sps_stats] = dspcam::bench::measure_repeated_pair(opt, [&] {
        const Rate r = engine_stream_rate(shards, threads, 20'000, nullptr,
                                          nullptr, &effective);
        return std::pair<double, double>{r.cycles_per_sec, r.searches_per_sec};
      });
      const bool parallel = threads > 1;
      const double scaling =
          parallel && serial_median > 0 ? stats.median / serial_median : 0;
      if (!parallel) serial_median = stats.median;
      char ratio[32] = "-";
      if (parallel) std::snprintf(ratio, sizeof(ratio), "%.2fx", scaling);
      std::printf("%-8u %-10u %14.0f %14.0f %10s\n", shards, effective,
                  stats.median, sps_stats.median, ratio);
      auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
      row.str("kind", "shard_scaling")
          .num("shards", static_cast<std::uint64_t>(shards))
          .num("step_threads", static_cast<std::uint64_t>(threads))
          .num("effective_step_threads", static_cast<std::uint64_t>(effective))
          .num("host_cores", static_cast<std::uint64_t>(cores))
          .num("sim_cycles", std::uint64_t{20'000});
      dspcam::bench::add_stats(row, "cycles_per_sec", stats);
      dspcam::bench::add_stats(row, "searches_per_sec", sps_stats);
      if (parallel) row.num("speedup_vs_serial", scaling);
      log.emit(row);
    }
  }
  // Part 3: telemetry overhead on the sharded stream.
  std::printf("\n%-24s %14s %10s\n", "configuration", "cycles/s", "vs bare");
  const unsigned t_shards = 4;
  const std::uint64_t t_cycles = 20'000;
  const auto bare = dspcam::bench::measure_repeated(opt, [&] {
    return engine_stream_rate(t_shards, 1, t_cycles).cycles_per_sec;
  });
  std::printf("%-24s %14.0f %10s\n", "4 shards, bare", bare.median, "-");
  dspcam::telemetry::MetricRegistry registry;
  dspcam::telemetry::SpanTracer tracer;  // default 1-in-16 sampling
  const auto traced = dspcam::bench::measure_repeated(opt, [&] {
    registry.reset();
    tracer.clear();
    return engine_stream_rate(t_shards, 1, t_cycles, &registry, &tracer)
        .cycles_per_sec;
  });
  const double overhead = bare.median > 0 ? traced.median / bare.median : 0;
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.3fx", overhead);
  std::printf("%-24s %14.0f %10s\n", "4 shards, telemetry", traced.median, ratio);
  {
    auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
    row.str("kind", "telemetry_overhead")
        .num("shards", static_cast<std::uint64_t>(t_shards))
        .num("sim_cycles", t_cycles)
        .num("sample_every", tracer.config().sample_every)
        .num("relative_rate", overhead)
        .num("spans_finished", tracer.finished());
    dspcam::bench::add_stats(row, "bare_cycles_per_sec", bare);
    dspcam::bench::add_stats(row, "traced_cycles_per_sec", traced);
    dspcam::bench::add_telemetry(row, registry);
    log.emit(row);
  }
  // Health plane on top: same stream with the default rule pack evaluated at
  // every snapshot and the flight recorder armed. Rides the same <10% bar as
  // the base telemetry row.
  {
    dspcam::telemetry::HealthMonitor health(registry);
    health.add_default_rules();
    dspcam::telemetry::FlightRecorder recorder;
    const auto observed = dspcam::bench::measure_repeated(opt, [&] {
      registry.reset();
      tracer.clear();
      health.reset();
      recorder.clear();
      return engine_stream_rate(t_shards, 1, t_cycles, &registry, &tracer,
                                nullptr, &health, &recorder)
          .cycles_per_sec;
    });
    const double h_overhead = bare.median > 0 ? observed.median / bare.median : 0;
    char h_ratio[32];
    std::snprintf(h_ratio, sizeof(h_ratio), "%.3fx", h_overhead);
    std::printf("%-24s %14.0f %10s\n", "4 shards, health+fdr", observed.median,
                h_ratio);
    auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
    row.str("kind", "health_overhead")
        .num("shards", static_cast<std::uint64_t>(t_shards))
        .num("sim_cycles", t_cycles)
        .num("relative_rate", h_overhead)
        .num("health_evaluations", health.evaluations())
        .num("events_recorded", recorder.recorded());
    dspcam::bench::add_stats(row, "bare_cycles_per_sec", bare);
    dspcam::bench::add_stats(row, "observed_cycles_per_sec", observed);
    log.emit(row);
  }

  // Part 4: safe-horizon ablation.
  std::printf("\n%-8s %-10s %-8s %14s %10s\n", "shards", "threads", "K",
              "cycles/s", "vs K=1");
  const unsigned h_shards = 8;
  const std::uint64_t h_cycles = 20'000;
  for (const unsigned threads : {1u, 8u}) {
    double k1_median = 0;
    // 0 encodes "auto" (the engine's own output_horizon()).
    for (const std::uint64_t k : {1ull, 4ull, 16ull, 64ull, 0ull}) {
      unsigned effective = threads;
      const auto stats = dspcam::bench::measure_repeated(opt, [&] {
        return horizon_stream_rate(h_shards, threads, h_cycles, k, &effective);
      });
      const bool is_k1 = k == 1;
      if (is_k1) k1_median = stats.median;
      const double speedup = k1_median > 0 ? stats.median / k1_median : 0;
      char k_label[24] = "auto";
      if (k != 0) std::snprintf(k_label, sizeof(k_label), "%llu",
                                static_cast<unsigned long long>(k));
      char ratio[32] = "-";
      if (!is_k1) std::snprintf(ratio, sizeof(ratio), "%.2fx", speedup);
      std::printf("%-8u %-10u %-8s %14.0f %10s\n", h_shards, effective, k_label,
                  stats.median, ratio);
      auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
      row.str("kind", "horizon")
          .num("shards", static_cast<std::uint64_t>(h_shards))
          .num("step_threads", static_cast<std::uint64_t>(threads))
          .num("effective_step_threads", static_cast<std::uint64_t>(effective))
          .num("host_cores", static_cast<std::uint64_t>(cores))
          .str("horizon", k_label)
          .num("sim_cycles", h_cycles);
      dspcam::bench::add_stats(row, "cycles_per_sec", stats);
      if (!is_k1) row.num("speedup_vs_k1", speedup);
      log.emit(row);
    }
  }

  // Part 5: match-kernel ablation - registry-selected specialized kernel vs
  // the generic sweep forced on the same geometry. Geometries are chosen so
  // each exercises a different specialized family (32-bit-lane equality,
  // 32-bit-lane masked, full-width equality); on hosts where the registry
  // resolves to the generic kernel anyway (e.g. no AVX2, where only the
  // depth-templated scalar kernels differ) the rows still record which
  // kernel actually ran, so trajectories stay honest.
  struct KernelGeometry {
    const char* label;
    cam::CamKind kind;
    unsigned data_width;
    unsigned blocks;
    unsigned cells;
    std::uint64_t cycles;
  };
  // Deep blocks: per-cycle sweep work has to dominate the fixed unit
  // overhead (routing, encoder, pipeline bookkeeping) for the kernel
  // difference to be visible above runner noise.
  const KernelGeometry kernel_geometries[] = {
      {"bcam_w32", cam::CamKind::kBinary, 32, 32, 256, 6'000},
      {"tcam_w16", cam::CamKind::kTernary, 16, 32, 256, 6'000},
      {"bcam_w48", cam::CamKind::kBinary, 48, 16, 256, 10'000},
  };
  std::printf("\n%-10s %-16s %14s %14s %10s\n", "geometry", "kernel",
              "cycles/s", "searches/s", "vs generic");
  for (const auto& kg : kernel_geometries) {
    double generic_median = 0;
    for (const bool force_generic : {true, false}) {
      auto cfg = unit_config(kg.blocks, kg.cells, dspcam::cam::EvalMode::kFast,
                             kg.kind, kg.data_width);
      cfg.block.force_generic_kernel = force_generic;
      const std::string kernel = kernel_name_for(cfg);
      const auto [stats, sps_stats] = dspcam::bench::measure_repeated_pair(opt, [&] {
        const Rate r = search_stream_rate(cfg, kg.cycles);
        return std::pair<double, double>{r.cycles_per_sec, r.searches_per_sec};
      });
      const double speedup =
          !force_generic && generic_median > 0 ? stats.median / generic_median : 0;
      if (force_generic) generic_median = stats.median;
      char ratio[32] = "-";
      if (!force_generic) std::snprintf(ratio, sizeof(ratio), "%.2fx", speedup);
      std::printf("%-10s %-16s %14.0f %14.0f %10s\n", kg.label, kernel.c_str(),
                  stats.median, sps_stats.median, ratio);
      auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
      row.str("kind", "kernel")
          .str("unit", kg.label)
          .str("cam_kind", dspcam::cam::to_string(kg.kind))
          .str("kernel", kernel)
          .num("data_width", static_cast<std::uint64_t>(kg.data_width))
          .num("blocks", static_cast<std::uint64_t>(kg.blocks))
          .num("cells_per_block", static_cast<std::uint64_t>(kg.cells))
          .num("force_generic", std::uint64_t{force_generic ? 1u : 0u})
          .num("sim_cycles", kg.cycles);
      dspcam::bench::add_stats(row, "cycles_per_sec", stats);
      dspcam::bench::add_stats(row, "searches_per_sec", sps_stats);
      if (!force_generic) row.num("speedup_vs_generic", speedup);
      log.emit(row);
    }
  }

  // Part 6: multi-key match fusion ablation. One deep geometry (the sweep
  // has to dominate the fixed per-cycle unit overhead for batching to show),
  // fusion width B in {1, 2, 4, 8}, search-only vs a 1-in-16 write mix
  // whose barriers keep cutting batches short.
  const unsigned f_blocks = 4, f_cells = 4096;
  const std::uint64_t f_cycles = 5'000;
  char f_label[32];
  std::snprintf(f_label, sizeof(f_label), "%ux%u", f_blocks, f_cells);
  const std::string f_kernel = kernel_name_for(
      unit_config(f_blocks, f_cells, dspcam::cam::EvalMode::kFast));
  std::printf("\n%-10s %-12s %-4s %14s %14s %10s %10s\n", "geometry", "mix",
              "B", "cycles/s", "searches/s", "occupancy", "vs B=1");
  for (const bool write_mix : {false, true}) {
    for (const std::size_t b : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      // The speedup is measured PAIRED: every repetition runs the B=1
      // baseline and the fused configuration back to back and contributes
      // one ratio, and the reported figure is the median ratio. Comparing
      // two independently-measured medians instead lets slow host-load
      // drift between the two measurement windows masquerade as (or mask)
      // a fusion effect; in each back-to-back pair the drift cancels.
      double occupancy = 0;
      const bool is_b1 = b == 1;
      std::vector<double> cps, sps, ratios;
      const auto run_pair = [&] {
        const FusionRate base =
            is_b1 ? FusionRate{}
                  : fusion_stream_rate(f_blocks, f_cells, 1, write_mix,
                                       f_cycles);
        const FusionRate r =
            fusion_stream_rate(f_blocks, f_cells, b, write_mix, f_cycles);
        occupancy = r.occupancy_mean;
        return std::pair<FusionRate, FusionRate>{base, r};
      };
      for (unsigned i = 0; i < opt.warmup; ++i) (void)run_pair();
      for (unsigned i = 0; i < opt.repeat; ++i) {
        const auto [base, r] = run_pair();
        cps.push_back(r.cycles_per_sec);
        sps.push_back(r.searches_per_sec);
        if (!is_b1 && base.cycles_per_sec > 0) {
          ratios.push_back(r.cycles_per_sec / base.cycles_per_sec);
        }
      }
      const auto stats = dspcam::bench::RepeatStats::of(std::move(cps));
      const auto sps_stats = dspcam::bench::RepeatStats::of(std::move(sps));
      const double speedup = dspcam::bench::RepeatStats::of(ratios).median;
      char ratio[32] = "-";
      if (!is_b1) std::snprintf(ratio, sizeof(ratio), "%.2fx", speedup);
      std::printf("%-10s %-12s %-4zu %14.0f %14.0f %10.2f %10s\n", f_label,
                  write_mix ? "write_mix" : "search_only", b, stats.median,
                  sps_stats.median, occupancy, ratio);
      auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
      row.str("kind", "fusion")
          .str("unit", f_label)
          .str("mix", write_mix ? "write_mix" : "search_only")
          .str("kernel", f_kernel)
          .num("fusion_keys", static_cast<std::uint64_t>(b))
          .num("blocks", static_cast<std::uint64_t>(f_blocks))
          .num("cells_per_block", static_cast<std::uint64_t>(f_cells))
          .num("sim_cycles", f_cycles)
          .num("batch_occupancy_mean", occupancy);
      dspcam::bench::add_stats(row, "cycles_per_sec", stats);
      dspcam::bench::add_stats(row, "searches_per_sec", sps_stats);
      if (!is_b1) row.num("speedup_vs_b1", speedup);
      log.emit(row);
    }
  }

  // Part 7: fused sweep->encode ablation, at the kernel-call level so the
  // unit pipeline's fixed overhead cannot dilute the effect being measured.
  // For each geometry the three kernel tiers that carry a fused entry point
  // are timed - the registry's pick for the geometry, the AOT-generated
  // exact pin, and the scalar depth template - each against ITS OWN legacy
  // sweep+BitVec+encode path, paired per repetition like part 6 so host
  // drift cancels out of the ratio.
  struct EncodeGeometry {
    const char* label;
    dspcam::cam::CamKind kind;
    unsigned width;
    unsigned depth;
    bool mask_free;
    std::uint64_t iters;  ///< Encode calls per measured run.
  };
  const EncodeGeometry encode_geometries[] = {
      {"bcam_w32_d64", dspcam::cam::CamKind::kBinary, 32, 64, true, 40'000},
      {"bcam_w32_d256", dspcam::cam::CamKind::kBinary, 32, 256, true, 15'000},
      {"tcam_w32_d64", dspcam::cam::CamKind::kTernary, 32, 64, false, 40'000},
      {"tcam_w16_d256", dspcam::cam::CamKind::kTernary, 16, 256, false, 15'000},
  };
  std::printf("\n%-16s %-12s %-10s %-18s %14s %12s\n", "geometry", "scheme",
              "path", "kernel", "encodes/s", "vs unfused");
  for (const auto& eg : encode_geometries) {
    const EncodeWorkload work =
        make_encode_workload(eg.width, eg.depth, eg.mask_free);
    dspcam::cam::MatchKernelQuery q;
    q.kind = eg.kind;
    q.data_width = eg.width;
    q.block_size = eg.depth;
    char gen_name[48], tmpl_name[48];
    std::snprintf(gen_name, sizeof(gen_name), "gen_%s_w%u_d%u",
                  eg.mask_free ? "eq" : "masked", eg.width, eg.depth);
    std::snprintf(tmpl_name, sizeof(tmpl_name), "%s_d%u",
                  eg.mask_free ? "eq" : "masked", eg.depth);
    const struct {
      const char* path;
      const dspcam::cam::MatchKernel* kernel;
    } tiers[] = {
        {"registry", &dspcam::cam::select_match_kernel(q)},
        {"aot", kernel_named(gen_name)},
        {"template", kernel_named(tmpl_name)},
    };
    for (const auto scheme : {dspcam::cam::EncodingScheme::kPriorityIndex,
                              dspcam::cam::EncodingScheme::kOneHot,
                              dspcam::cam::EncodingScheme::kMatchCount}) {
      for (const auto& tier : tiers) {
        if (tier.kernel == nullptr || tier.kernel->encode_fn == nullptr) {
          continue;  // no AOT pin for this geometry / force-generic host
        }
        std::vector<double> eps, base_eps, ratios;
        const auto run_pair = [&] {
          const double base =
              unfused_encode_rate(*tier.kernel, work, scheme, eg.iters);
          const double fused =
              fused_encode_rate(*tier.kernel, work, scheme, eg.iters);
          return std::pair<double, double>{base, fused};
        };
        for (unsigned i = 0; i < opt.warmup; ++i) (void)run_pair();
        for (unsigned i = 0; i < opt.repeat; ++i) {
          const auto [base, fused] = run_pair();
          base_eps.push_back(base);
          eps.push_back(fused);
          if (base > 0) ratios.push_back(fused / base);
        }
        const auto stats = dspcam::bench::RepeatStats::of(std::move(eps));
        const auto base_stats =
            dspcam::bench::RepeatStats::of(std::move(base_eps));
        const double speedup = dspcam::bench::RepeatStats::of(ratios).median;
        const std::string scheme_name = dspcam::cam::to_string(scheme);
        std::printf("%-16s %-12s %-10s %-18s %14.0f %11.2fx\n", eg.label,
                    scheme_name.c_str(), tier.path, tier.kernel->name,
                    stats.median, speedup);
        auto row = dspcam::bench::JsonLog::Row("micro_step_rate");
        row.str("kind", "encode")
            .str("unit", eg.label)
            .str("scheme", scheme_name)
            .str("path", tier.path)
            .str("kernel", tier.kernel->name)
            .str("cam_kind", dspcam::cam::to_string(eg.kind))
            .num("data_width", static_cast<std::uint64_t>(eg.width))
            .num("cells", static_cast<std::uint64_t>(eg.depth))
            .num("encode_calls", eg.iters);
        dspcam::bench::add_stats(row, "encodes_per_sec", stats);
        dspcam::bench::add_stats(row, "unfused_encodes_per_sec", base_stats);
        row.num("speedup_vs_unfused", speedup);
        log.emit(row);
      }
    }
  }

  std::printf("\n(host has %u hardware threads; parallel scaling is bounded "
              "by that, not by the engine)\n", cores);
  return 0;
}
