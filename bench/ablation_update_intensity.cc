// Ablation: sustained throughput vs update intensity, across CAM families.
//
// Section II's central challenge: "Many CAM architectures are optimized for
// read-intensive operations with infrequent updates ... Frequent updates
// result in increased latency and create bottlenecks". This bench
// quantifies it: a stream of N operations with an update fraction u is
// played against each family's latency/frequency model:
//
//   DSP-CAM (ours): updates and searches both pipeline at II = 1; the mix
//                   does not matter (update 6 / search 7-8 cycles latency).
//   LUTRAM TCAM:    searches pipeline, but each update blocks the table for
//                   2^chunk + 6 cycles (transposed-table rewrite).
//   BRAM CAM:       same structure with 2^7 + 1 = 129-cycle updates.
//
// The DSP CAM's line is flat; the others collapse as updates grow - the
// quantitative form of the paper's Fig. 1 "performance" axis.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/bram_cam.h"
#include "src/baseline/lut_cam.h"
#include "src/common/table.h"
#include "src/model/timing.h"

using namespace dspcam;

namespace {

struct Family {
  const char* name;
  double freq_mhz;
  double search_ii;  ///< Cycles per pipelined search.
  double update_cost;///< Cycles the table is blocked per update.
};

double mops(const Family& f, double update_fraction, double ops = 1e6) {
  const double cycles =
      ops * ((1.0 - update_fraction) * f.search_ii + update_fraction * f.update_cost);
  return ops / cycles * f.freq_mhz;
}

}  // namespace

int main() {
  bench::banner("Ablation: throughput vs update intensity (1024-entry tables)");

  // 1024 x 32 configurations of each family.
  cam::UnitConfig ours_cfg;
  ours_cfg.block.cell.data_width = 32;
  ours_cfg.block.block_size = 128;
  ours_cfg.block.bus_width = 512;
  ours_cfg.unit_size = 8;
  ours_cfg.bus_width = 512;
  const baseline::LutTcam lut({.entries = 1024, .width = 32});
  const baseline::BramCam bram({.entries = 1024, .width = 32});

  const Family families[] = {
      {"DSP-CAM (ours)", model::unit_frequency_mhz(ours_cfg), 1.0, 1.0},
      {"LUTRAM TCAM", lut.frequency_mhz(), 1.0,
       static_cast<double>(lut.update_latency())},
      {"BRAM CAM", bram.frequency_mhz(), 1.0,
       static_cast<double>(bram.update_latency())},
  };

  TextTable t({"Update fraction", "DSP-CAM Mop/s", "LUTRAM Mop/s", "BRAM Mop/s",
               "Ours vs LUTRAM", "Ours vs BRAM"});
  for (double u : {0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0}) {
    const double a = mops(families[0], u);
    const double b = mops(families[1], u);
    const double c = mops(families[2], u);
    t.add_row({TextTable::num(u * 100, 0) + "%", TextTable::num(a, 0),
               TextTable::num(b, 0), TextTable::num(c, 0),
               TextTable::num(a / b, 1) + "x", TextTable::num(a / c, 1) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Search-only streams favour the LUTRAM family's higher clock; from a\n"
      "few percent of updates onward the DSP CAM dominates, and at the\n"
      "update-heavy end (dynamic graphs, streaming dedup) the gap reaches\n"
      "an order of magnitude - the paper's Section II argument in numbers.\n"
      "(Update beats here move one word; the DSP CAM's wide bus additionally\n"
      "carries 16 words/beat, which Table VI/VIII report as 4800 Mop/s.)\n");
  return 0;
}
