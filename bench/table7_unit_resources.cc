// Reproduces paper Table VII (CAM Unit Configuration and Resource
// Utilization) and prints Table IV (device capacity) for context.
//
// Unit sizes 512..9728 x 48 bits, block size 256, 480-bit bus (10x 48-bit
// words on the 512-bit channel): LUTs and Fmax from the calibrated model
// (anchored to the paper's numbers), DSP count structural.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/config.h"
#include "src/common/table.h"
#include "src/model/device.h"
#include "src/model/resources.h"
#include "src/model/timing.h"

using namespace dspcam;

int main() {
  bench::banner("Table IV: Resource capacity of AMD Alveo U250");
  const auto dev = model::alveo_u250();
  {
    TextTable t({"Resource", "LUTs", "Registers", "BRAM", "URAM", "DSP"});
    t.add_row({"Quantity", TextTable::num(dev.luts), TextTable::num(dev.registers),
               TextTable::num(dev.bram), TextTable::num(dev.uram),
               TextTable::num(dev.dsp)});
    std::printf("%s\n", t.to_string().c_str());
  }

  bench::banner(
      "Table VII: CAM Unit Configuration and Resource Utilization "
      "(paper values in parentheses)");

  struct PaperRow {
    unsigned entries;
    unsigned luts;
    double mhz;
  };
  const PaperRow paper[] = {{512, 2491, 300},  {1024, 5072, 300}, {2048, 10167, 300},
                            {4096, 20330, 265}, {6144, 29385, 252},
                            {8192, 38191, 240}, {9728, 45244, 235}};

  TextTable t({"CAM size", "LUTs", "LUT %", "DSPs", "DSP % (of usable)", "Freq (MHz)"});
  for (const auto& row : paper) {
    cam::UnitConfig cfg;
    cfg.block.cell.data_width = 48;
    cfg.block.block_size = 256;
    cfg.block.bus_width = 480;
    cfg.unit_size = row.entries / 256;
    cfg.bus_width = 480;
    cfg = cam::UnitConfig::with_auto_timing(cfg);
    const auto res = model::unit_resources(cfg);
    t.add_row(
        {std::to_string(row.entries) + " x 48b",
         bench::vs_paper(TextTable::num(res.luts), TextTable::num(row.luts)),
         TextTable::num(model::utilisation_pct(res.luts, dev.luts), 2),
         TextTable::num(res.dsps),
         TextTable::num(model::utilisation_pct(res.dsps, model::kU250UsableDsps), 2),
         bench::vs_paper(TextTable::num(model::unit_frequency_mhz(cfg), 0),
                         TextTable::num(row.mhz, 0))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "At the maximum 9728 x 48b configuration the unit uses %.2f%% of the\n"
      "U250's usable DSPs but only %.2f%% of its LUTs (paper: 79.25%% / "
      "2.92%%).\n",
      model::utilisation_pct(9728, model::kU250UsableDsps),
      model::utilisation_pct(45244, dev.luts));
  return 0;
}
