// Reproduces paper Table III: the configurable parameter space.
//
// "Our CAM unit is fully parameterized with different hierarchies of
// configurations" - this bench demonstrates it by elaborating a grid over
// every Table III parameter, smoke-testing each instance (store one value,
// search it) on the cycle-accurate model, and reporting the space that was
// actually exercised, with the latency/resource spread across it.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/unit.h"
#include "src/common/table.h"
#include "src/model/resources.h"
#include "src/model/timing.h"

using namespace dspcam;

namespace {

bool smoke_test(const cam::UnitConfig& cfg) {
  cam::CamUnit unit(cfg);
  cam::UnitRequest upd;
  upd.op = cam::OpKind::kUpdate;
  upd.words = {42};
  upd.seq = 1;
  unit.issue(std::move(upd));
  for (unsigned i = 0; i < 10; ++i) bench::step(unit);
  const unsigned lat = bench::measure_unit_search_latency(unit, 42);
  return lat == unit.search_latency() && unit.response()->results[0].hit;
}

}  // namespace

int main() {
  bench::banner("Table III: configurable parameters, exercised as a live grid");

  {
    TextTable t({"Granularity", "Parameter", "Values swept here"});
    t.add_row({"CAM Cell", "Cell type", "Binary, Ternary, Range-matching"});
    t.add_row({"CAM Cell", "Storage data width", "8, 16, 32, 48 bits"});
    t.add_row({"CAM Block", "Block size", "32, 64, 128, 256 cells"});
    t.add_row({"CAM Block", "Block bus width", "8 words of the data width"});
    t.add_row({"CAM Block", "Result encoding", "priority / one-hot / count"});
    t.add_row({"CAM Unit", "Unit size", "2, 4, 8 blocks"});
    t.add_row({"CAM Unit", "Unit bus width", "= block bus width"});
    std::printf("%s\n", t.to_string().c_str());
  }

  unsigned configs = 0;
  unsigned passed = 0;
  std::uint64_t min_dsp = ~0ULL;
  std::uint64_t max_dsp = 0;
  double min_mhz = 1e9;
  double max_mhz = 0;
  for (auto kind : {cam::CamKind::kBinary, cam::CamKind::kTernary, cam::CamKind::kRange}) {
    for (unsigned width : {8u, 16u, 32u, 48u}) {
      for (unsigned block : {32u, 64u, 128u, 256u}) {
        for (auto enc : {cam::EncodingScheme::kPriorityIndex,
                         cam::EncodingScheme::kOneHot, cam::EncodingScheme::kMatchCount}) {
          for (unsigned unit_size : {2u, 4u, 8u}) {
            cam::UnitConfig cfg;
            cfg.block.cell.kind = kind;
            cfg.block.cell.data_width = width;
            cfg.block.block_size = block;
            cfg.block.bus_width = width * 8;
            cfg.block.encoding = enc;
            cfg.unit_size = unit_size;
            cfg.bus_width = width * 8;
            cfg = cam::UnitConfig::with_auto_timing(cfg);
            ++configs;
            if (smoke_test(cfg)) ++passed;
            const auto res = model::unit_resources(cfg);
            min_dsp = std::min(min_dsp, res.dsps);
            max_dsp = std::max(max_dsp, res.dsps);
            const double f = model::unit_frequency_mhz(cfg);
            min_mhz = std::min(min_mhz, f);
            max_mhz = std::max(max_mhz, f);
          }
        }
      }
    }
  }
  std::printf(
      "Elaborated and smoke-tested %u configurations (%u passed: store one\n"
      "value, search it, latency == the configuration's documented value).\n"
      "Resource span across the grid: %llu - %llu DSPs at %.0f - %.0f MHz.\n",
      configs, passed, static_cast<unsigned long long>(min_dsp),
      static_cast<unsigned long long>(max_dsp), min_mhz, max_mhz);
  return passed == configs ? 0 : 1;
}
