// Ablation: dynamic-graph triangle counting (edge-insertion stream).
//
// The paper's Section II motivation made concrete: edges arrive one at a
// time ("immediate reflection of data changes"), the triangle count is
// maintained incrementally, and each insertion performs one set
// intersection with no cross-edge batching. The CAM's per-insertion cost
// follows the shorter adjacency list; the merge baseline's follows the sum -
// so the dynamic speedup exceeds the static Table IX numbers on skewed
// graphs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/graph/generators.h"
#include "src/tc/dynamic_tc.h"

using namespace dspcam;

namespace {

/// Shuffled undirected edge list of a generated graph.
std::vector<graph::Edge> insertion_stream(const graph::CsrGraph& g, Rng& rng) {
  auto edges = graph::undirected_edges(g);
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.next_below(i)]);
  }
  return edges;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: incremental triangle counting over edge-insertion streams");

  struct Workload {
    const char* name;
    graph::CsrGraph g;
  };
  Rng rng(4242);
  std::vector<Workload> workloads;
  workloads.push_back({"social (community)",
                       graph::community_graph(4000, 88000, 80, 0.85, rng)});
  workloads.push_back({"AS topology (hubs)", graph::hub_topology(6474, 90, rng)});
  workloads.push_back({"road lattice", graph::road_network(120, 120, 0.03, 0.3, rng)});
  workloads.push_back({"uniform random", graph::erdos_renyi(4000, 40000, rng)});

  tc::DynamicTcModel::Config cam_cfg;
  cam_cfg.engine = tc::DynamicEngine::kCam;
  tc::DynamicTcModel::Config merge_cfg;
  merge_cfg.engine = tc::DynamicEngine::kMerge;
  const tc::DynamicTcModel cam(cam_cfg);
  const tc::DynamicTcModel merge(merge_cfg);

  TextTable t({"Stream", "Insertions", "Triangles", "CAM cyc/ins", "Merge cyc/ins",
               "Speedup", "Static Table IX analogue"});
  for (auto& w : workloads) {
    const auto stream = insertion_stream(w.g, rng);
    const auto rc = cam.run(w.g.num_vertices(), stream);
    const auto rm = merge.run(w.g.num_vertices(), stream);
    if (rc.triangles != rm.triangles) {
      std::fprintf(stderr, "COUNT MISMATCH on %s\n", w.name);
      return 1;
    }
    const char* analogue = "-";
    if (std::string(w.name).find("social") != std::string::npos) analogue = "facebook ~5x";
    if (std::string(w.name).find("AS") != std::string::npos) analogue = "as20000102 ~27x";
    if (std::string(w.name).find("road") != std::string::npos) analogue = "roadNet ~2x";
    t.add_row({w.name, TextTable::num(rc.edges_processed), TextTable::num(rc.triangles),
               TextTable::num(rc.cycles_per_edge(), 1),
               TextTable::num(rm.cycles_per_edge(), 1),
               TextTable::num(rm.milliseconds() / rc.milliseconds(), 2) + "x",
               analogue});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Each insertion reloads the CAM (no cross-edge batching), yet the CAM\n"
      "still wins wherever lists are skewed: its cost tracks the shorter\n"
      "list at 4 keys/cycle plus a 16-word/beat load, while the merge walks\n"
      "both lists at one comparison per cycle. Road-like streams with tiny\n"
      "lists are bounded by per-insertion overheads for both engines.\n");
  return 0;
}
