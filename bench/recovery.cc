// Recovery bench: what the robustness features cost.
//
// Three rows per run (BENCH_recovery.json):
//  - rebuild_snapshot / rebuild_golden: host wall-time to bring a
//    quarantined shard back into service from a sealed ShardSnapshot vs the
//    scrubber's golden shadow (both zero simulated cycles - rebuild is a
//    host-side maintenance action).
//  - reshard_grow / reshard_shrink: the settling pause (simulated cycles the
//    engine steps before the fleet swap) plus entries moved and wall-time
//    for a 4 -> 8 and an 8 -> 4 hash repartition under in-flight traffic.
//  - checkpoint_roundtrip: checkpoint -> save -> load -> restore into a
//    FRESH engine, then the recorded search trace replays against both
//    engines and the completion streams are compared byte-for-byte (the
//    disaster-recovery drill). The checkpoint file is left on disk
//    (--snapshot <path>, default BENCH_recovery.ckpt) for snapshot_lint.
//
// Exits non-zero when the roundtrip streams diverge, so the CI recovery
// smoke job gates on behaviour, not just syntax.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/scrubber.h"
#include "src/sim/request_trace.h"
#include "src/system/checkpoint_io.h"
#include "src/system/driver.h"
#include "src/system/sharded_engine.h"

namespace dspcam::bench {
namespace {

using system::CamDriver;
using system::CamSystem;
using system::ShardedCamEngine;

CamSystem::Config shard_config() {
  CamSystem::Config cfg;
  cfg.unit.block.cell.data_width = 32;
  cfg.unit.block.block_size = 32;
  cfg.unit.block.bus_width = 512;
  cfg.unit.block.parity = true;
  cfg.unit.unit_size = 4;
  cfg.unit.bus_width = 512;
  return cfg;
}

ShardedCamEngine::Config engine_config(unsigned shards) {
  ShardedCamEngine::Config cfg;
  cfg.shards = shards;
  return cfg;
}

std::vector<cam::Word> workload(unsigned entries) {
  std::vector<cam::Word> words;
  words.reserve(entries);
  for (unsigned i = 0; i < entries; ++i) words.push_back(i * 2 + 1);
  return words;
}

/// Completions can deliver a few cycles before the shard pipelines flush to
/// idle; snapshot/rebuild require full settle, so step the residue out.
void settle(ShardedCamEngine& engine) {
  for (unsigned i = 0; i < 100000 && !engine.idle(); ++i) engine.step();
}

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wall µs to rebuild one quarantined shard, from a snapshot or the golden
/// shadow.
double measure_rebuild(bool golden, const std::vector<cam::Word>& words) {
  ShardedCamEngine engine(engine_config(4), shard_config());
  CamDriver driver(engine);
  driver.store(words);
  settle(engine);
  fault::Scrubber scrubber(*engine.fault_target(), {});
  scrubber.capture();
  const fault::ShardSnapshot snap = engine.snapshot_shard(1);
  engine.quarantine_shard(1);
  const auto t0 = std::chrono::steady_clock::now();
  if (golden) {
    engine.rebuild_shard(1, scrubber);
  } else {
    engine.rebuild_shard(1, snap);
  }
  return elapsed_us(t0);
}

/// {pause_cycles, wall µs} for one reshard under in-flight search traffic.
std::pair<double, double> measure_reshard(unsigned from, unsigned to,
                                          const std::vector<cam::Word>& words) {
  ShardedCamEngine engine(engine_config(from), shard_config());
  CamDriver driver(engine);
  driver.store(words);
  for (unsigned i = 0; i < 64; ++i) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.keys = {words[i % words.size()]};
    driver.submit_async(std::move(req));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const ShardedCamEngine::ReshardReport report = engine.reshard(to);
  const double us = elapsed_us(t0);
  driver.drain();
  while (driver.try_pop_completion()) {
  }
  return {static_cast<double>(report.pause_cycles), us};
}

}  // namespace
}  // namespace dspcam::bench

int main(int argc, char** argv) {
  using namespace dspcam::bench;
  using dspcam::cam::UnitRequest;
  using dspcam::sim::CompletionStream;
  using dspcam::sim::RequestTrace;

  const BenchOptions opt =
      BenchOptions::from_args(argc, argv, "BENCH_recovery.json");
  std::string snapshot_path = "BENCH_recovery.ckpt";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--snapshot") snapshot_path = argv[i + 1];
  }
  JsonLog log = JsonLog::from_options(opt);

  const std::vector<dspcam::cam::Word> words = workload(256);

  banner("Shard rebuild latency (quarantine -> verified re-admission)");
  std::printf("%-18s %12s %12s\n", "source", "median_us", "max_us");
  for (const bool golden : {false, true}) {
    const RepeatStats st = measure_repeated(
        opt, [&]() { return measure_rebuild(golden, words); });
    const char* name = golden ? "rebuild_golden" : "rebuild_snapshot";
    std::printf("%-18s %12.1f %12.1f\n", name, st.median, st.max);
    JsonLog::Row row("recovery");
    row.str("case", name).num("shards", std::uint64_t{4});
    add_stats(row, "wall_us", st);
    log.emit(row);
  }

  banner("Reshard pause (hash repartition under in-flight traffic)");
  std::printf("%-18s %14s %12s %14s\n", "transition", "pause_cycles",
              "median_us", "entries_moved");
  const std::pair<unsigned, unsigned> transitions[] = {{4, 8}, {8, 4}};
  for (const auto& [from, to] : transitions) {
    const auto [pause, wall] = measure_repeated_pair(
        opt, [&]() { return measure_reshard(from, to, words); });
    const std::string name =
        "reshard_" + std::to_string(from) + "_to_" + std::to_string(to);
    std::printf("%-18s %14.0f %12.1f %14zu\n", name.c_str(), pause.median,
                wall.median, words.size());
    JsonLog::Row row("recovery");
    row.str("case", name)
        .num("from_shards", std::uint64_t{from})
        .num("to_shards", std::uint64_t{to})
        .num("entries_moved", static_cast<std::uint64_t>(words.size()));
    add_stats(row, "pause_cycles", pause);
    add_stats(row, "wall_us", wall);
    log.emit(row);
  }

  banner("Checkpoint roundtrip (save -> load -> restore -> replay)");
  ShardedCamEngine engine(engine_config(4), shard_config());
  {
    CamDriver driver(engine);
    driver.store(words);
  }
  settle(engine);
  RequestTrace searches;
  for (const dspcam::cam::Word w : words) {
    UnitRequest req;
    req.op = dspcam::cam::OpKind::kSearch;
    req.keys = {w};
    searches.record(req);
  }
  const auto ckpt = engine.checkpoint();
  dspcam::system::save_checkpoint(ckpt, snapshot_path);
  const auto loaded = dspcam::system::load_checkpoint(snapshot_path);
  ShardedCamEngine restored(engine_config(4), shard_config());
  restored.restore(loaded);

  CompletionStream original(CompletionStream::Placement::kFull);
  CompletionStream replayed(CompletionStream::Placement::kFull);
  CamDriver drv1(engine);
  CamDriver drv2(restored);
  drv1.replay_trace(searches, original);
  drv2.replay_trace(searches, replayed);
  const bool match = original.bytes() == replayed.bytes();

  std::ifstream ck(snapshot_path, std::ios::ate | std::ios::binary);
  const std::uint64_t file_bytes =
      ck ? static_cast<std::uint64_t>(ck.tellg()) : 0;
  std::printf("snapshot file: %s (%llu bytes)\n", snapshot_path.c_str(),
              static_cast<unsigned long long>(file_bytes));
  std::printf("completion streams: %s (digest %llx vs %llx over %zu tickets)\n",
              match ? "IDENTICAL" : "DIVERGED",
              static_cast<unsigned long long>(original.digest()),
              static_cast<unsigned long long>(replayed.digest()),
              original.size());
  JsonLog::Row row("recovery");
  row.str("case", "checkpoint_roundtrip")
      .num("shards", std::uint64_t{4})
      .num("file_bytes", file_bytes)
      .num("tickets", static_cast<std::uint64_t>(original.size()))
      .boolean("streams_match", match);
  log.emit(row);

  return match ? 0 : 1;
}
