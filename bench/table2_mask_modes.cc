// Reproduces paper Table II: MASK value for CAM type configuration.
//
// Demonstrates each row's behaviour on a live DSP-based cell: BCAM compares
// every bit, TCAM ignores MASK=1 bits, RMCAM matches a power-of-two aligned
// range by masking its low bits.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/cell.h"
#include "src/cam/mask.h"
#include "src/common/bitops.h"
#include "src/common/table.h"

using namespace dspcam;

namespace {

bool search(cam::CamCell& cell, cam::Word key) {
  cell.drive_search(key);
  bench::step(cell);
  bench::step(cell);
  return cell.match();
}

}  // namespace

int main() {
  bench::banner("Table II: MASK value for CAM type configuration (live demo)");

  TextTable t({"Type", "MASK value (16-bit view)", "Behaviour demonstrated"});

  {
    cam::CellConfig cfg;
    cfg.kind = cam::CamKind::kBinary;
    cfg.data_width = 16;
    cam::CamCell cell(cfg);
    cell.drive_write(0x1234);
    bench::step(cell);
    const bool exact = search(cell, 0x1234);
    const bool off = search(cell, 0x1235);
    t.add_row({"BCAM", to_binary(cam::bcam_mask(16) & low_bits(16), 16),
               std::string("all bits compared: 0x1234 ") + (exact ? "hits" : "MISSES") +
                   ", 0x1235 " + (off ? "HITS" : "misses")});
  }
  {
    cam::CellConfig cfg;
    cfg.kind = cam::CamKind::kTernary;
    cfg.data_width = 16;
    cam::CamCell cell(cfg);
    const auto mask = cam::tcam_mask(16, 0x00FF);
    cell.drive_write(0x1200, mask);
    bench::step(cell);
    const bool wild = search(cell, 0x12AB);
    const bool off = search(cell, 0x13AB);
    t.add_row({"TCAM", to_binary(mask & low_bits(16), 16),
               std::string("MASK=1 bits are don't-care: 0x12AB ") +
                   (wild ? "hits" : "MISSES") + ", 0x13AB " + (off ? "HITS" : "misses")});
  }
  {
    cam::CellConfig cfg;
    cfg.kind = cam::CamKind::kRange;
    cfg.data_width = 16;
    cam::CamCell cell(cfg);
    const auto mask = cam::rmcam_mask(16, 0x0040, 4);  // [0x40, 0x50)
    cell.drive_write(0x0040, mask);
    bench::step(cell);
    const bool in_lo = search(cell, 0x0040);
    const bool in_hi = search(cell, 0x004F);
    const bool below = search(cell, 0x003F);
    const bool above = search(cell, 0x0050);
    t.add_row({"RMCAM", to_binary(mask & low_bits(16), 16),
               std::string("range [0x40,0x50): ends ") +
                   (in_lo && in_hi ? "hit" : "MISS") + ", outside " +
                   (!below && !above ? "misses" : "HITS")});
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "The mask also performs data-width control: bits above the configured\n"
      "width are always masked out of the comparison.\n");
  return 0;
}
