// Reproduces paper Figure 1: the characteristics of current FPGA-based CAM
// designs (radar chart), printed as a score table plus ASCII bars.
//
// Quantitative axes (scalability, performance, frequency) are derived from
// the Table I survey data; the qualitative axes carry the paper's own
// assessment. 5 = best.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/model/characteristics.h"

using namespace dspcam;

namespace {

std::string bar(double v) {
  const int n = static_cast<int>(v * 2 + 0.5);  // 0..10 ticks
  std::string s(static_cast<std::size_t>(n), '#');
  return s + std::string(10 - n, '.');
}

}  // namespace

int main() {
  bench::banner("Figure 1: Characteristics of FPGA-based CAM designs (0-5, 5 = best)");

  const auto scores = model::characteristic_scores();
  TextTable t({"Family", "Scalability", "Performance", "Frequency", "Integration",
               "Multi-query"});
  for (const auto& s : scores) {
    t.add_row({s.family, TextTable::num(s.scalability, 1),
               TextTable::num(s.performance, 1), TextTable::num(s.frequency, 1),
               TextTable::num(s.integration, 1), TextTable::num(s.multi_query, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  for (const auto& s : scores) {
    std::printf("%-12s scal[%s] perf[%s] freq[%s] intg[%s] mq[%s]\n", s.family.c_str(),
                bar(s.scalability).c_str(), bar(s.performance).c_str(),
                bar(s.frequency).c_str(), bar(s.integration).c_str(),
                bar(s.multi_query).c_str());
  }
  std::printf(
      "\nReading: LUT CAMs trade scalability for frequency; BRAM CAMs trade\n"
      "latency for capacity; the prior DSP design has high frequency but a\n"
      "42-cycle search and no multi-query; the proposed design leads on\n"
      "scalability, latency balance, integration and multi-query support.\n");
  return 0;
}
