// Host-side microbenchmarks of the DSP48E2 behavioral model (google-
// benchmark). These measure the *simulator's* throughput, not the FPGA's -
// they exist so regressions in the hot commit() path are caught.
#include <benchmark/benchmark.h>

#include "src/dsp/dsp48e2.h"

using namespace dspcam;

namespace {

dsp::Dsp48e2Attributes cam_attrs() {
  dsp::Dsp48e2Attributes a;
  a.use_mult = false;
  return a;
}

dsp::OpMode xor_mode() {
  dsp::OpMode m;
  m.x = dsp::XMux::kAB;
  m.z = dsp::ZMux::kC;
  return m;
}

void BM_DspXorCommit(benchmark::State& state) {
  dsp::Dsp48e2 slice(cam_attrs());
  slice.inputs().opmode = xor_mode().encode();
  slice.inputs().alumode = 0b0100;
  slice.inputs().a = 0x155;
  slice.inputs().b = 0x2AAAA;
  std::uint64_t key = 0;
  for (auto _ : state) {
    slice.inputs().c = ++key;
    slice.inputs().ce_c = true;
    slice.commit();
    benchmark::DoNotOptimize(slice.outputs().pattern_detect);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DspXorCommit);

void BM_DspMacCommit(benchmark::State& state) {
  dsp::Dsp48e2Attributes a;
  a.use_mult = true;
  dsp::Dsp48e2 slice(a);
  dsp::OpMode m;
  m.x = dsp::XMux::kM;
  m.y = dsp::YMux::kM;
  m.z = dsp::ZMux::kP;
  slice.inputs().opmode = m.encode();
  slice.inputs().alumode = 0;
  std::uint64_t v = 1;
  for (auto _ : state) {
    slice.inputs().a = v & 0x3FF;
    slice.inputs().b = (v >> 3) & 0xFF;
    ++v;
    slice.commit();
    benchmark::DoNotOptimize(slice.outputs().p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DspMacCommit);

}  // namespace
