// Reproduces paper Table IX: triangle-counting execution time, CAM-based
// accelerator vs the merge-based (Vitis-style) baseline.
//
// Datasets are synthetic SNAP stand-ins (see src/graph/datasets.h and
// DESIGN.md's substitution table); both accelerators run on the same graph,
// the same single-channel DDR model, and the paper's configuration: CAM unit
// 2K x 32b, block size 128, 512-bit bus, priority encoding, one SLR.
//
// Absolute times depend on the synthetic graphs; the claim under test is
// the *shape*: the CAM accelerator wins everywhere, with large factors on
// hub-heavy graphs (as20000102, soc-Slashdot) and modest factors on
// road networks - and a comparable average speedup.
//
// Usage: table9_triangle_counting [--scale S] [--dataset NAME] [--full]
//        [--edges FILE]   (run on a real SNAP edge list instead)
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/graph/datasets.h"
#include "src/graph/io.h"
#include "src/model/timing.h"
#include "src/tc/cam_accel.h"
#include "src/tc/merge_accel.h"

using namespace dspcam;

namespace {

struct Row {
  std::string name;
  graph::PaperRow paper;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t triangles = 0;
  double ours_ms = 0;
  double baseline_ms = 0;
  double speedup() const { return ours_ms == 0 ? 0 : baseline_ms / ours_ms; }
};

Row run_one(const std::string& name, const graph::CsrGraph& g,
            const graph::PaperRow& paper) {
  tc::CamTcAccelerator::Config cam_cfg;  // the paper's Section V-B config
  cam_cfg.freq_mhz = model::unit_frequency_mhz(cam_cfg.unit_config());
  const tc::CamTcAccelerator cam(cam_cfg);
  const tc::MergeTcAccelerator merge;

  const auto rc = cam.run(g);
  const auto rm = merge.run(g);
  if (rc.triangles != rm.triangles) {
    std::fprintf(stderr, "TRIANGLE COUNT MISMATCH on %s: cam=%llu merge=%llu\n",
                 name.c_str(), static_cast<unsigned long long>(rc.triangles),
                 static_cast<unsigned long long>(rm.triangles));
  }
  Row row;
  row.name = name;
  row.paper = paper;
  row.vertices = g.num_vertices();
  row.edges = g.num_edges() / 2;
  row.triangles = rc.triangles;
  row.ours_ms = rc.milliseconds();
  row.baseline_ms = rm.milliseconds();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  double scale_override = 0;  // 0 = per-dataset default
  std::string only;
  std::string edges_file;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale_override = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--dataset") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc) {
      edges_file = argv[++i];
    } else if (std::strcmp(argv[i], "--full") == 0) {
      scale_override = 1.0;
    }
  }

  bench::banner("Table IX: Execution time (ms) of merge-based vs CAM-based TC");

  std::vector<Row> rows;
  if (!edges_file.empty()) {
    const auto g = graph::load_edge_list(edges_file);
    rows.push_back(run_one(edges_file, g, {}));
  } else {
    for (const auto& spec : graph::table9_datasets()) {
      if (!only.empty() && spec.name != only) continue;
      const double scale = scale_override > 0 ? scale_override : spec.default_scale;
      Rng rng(0xD5BCA0 + std::hash<std::string>{}(spec.name));
      const auto g = spec.generate(scale, rng);
      auto row = run_one(spec.name, g, spec.paper);
      if (scale != 1.0) row.name += " (x" + TextTable::num(scale, 2) + ")";
      rows.push_back(std::move(row));
    }
  }

  TextTable t({"Dataset", "|V|", "|E|", "Triangles", "Ours (ms)", "Baseline (ms)",
               "Speedup", "Paper speedup"});
  double sum_speedup = 0;
  double sum_paper = 0;
  for (const auto& r : rows) {
    t.add_row({r.name, TextTable::num(r.vertices), TextTable::num(r.edges),
               TextTable::num(r.triangles), TextTable::num(r.ours_ms, 3),
               TextTable::num(r.baseline_ms, 3),
               TextTable::num(r.speedup(), 2) + "x",
               r.paper.ours_ms > 0 ? TextTable::num(r.paper.speedup(), 2) + "x" : "-"});
    sum_speedup += r.speedup();
    sum_paper += r.paper.speedup();
  }
  std::printf("%s\n", t.to_string().c_str());
  if (!rows.empty()) {
    std::printf("Average speedup: %.2fx (paper: %.2fx)\n",
                sum_speedup / static_cast<double>(rows.size()),
                sum_paper / static_cast<double>(rows.size()));
  }
  std::printf(
      "\nTriangle counts are measured on the synthetic stand-in graphs (the\n"
      "real SNAP counts appear in EXPERIMENTS.md); pass --edges FILE to run\n"
      "on a real SNAP edge list.\n");
  return 0;
}
