// Ablation: database semi-join filter, CAM vs hash table.
//
// The paper's introduction claims "database query acceleration" as a CAM
// domain; this bench quantifies it for an IN-list / semi-join filter. The
// CAM probes min(M, 4) keys per cycle with no hashing and no collisions;
// the hash baseline probes ~1 key per cycle plus expected chain accesses.
// The crossover appears when the build side outgrows the 2K-entry CAM and
// partition passes multiply the probe cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/semijoin.h"
#include "src/common/random.h"
#include "src/common/table.h"

using namespace dspcam;

int main() {
  bench::banner("Ablation: semi-join filter (probe 1M rows), CAM vs hash");

  Rng rng(606);
  std::vector<std::uint32_t> probe(1'000'000);
  for (auto& v : probe) v = static_cast<std::uint32_t>(rng.next_bits(20));

  const apps::CamSemiJoin cam;
  const apps::HashSemiJoin hash;

  TextTable t({"Build keys", "CAM passes", "CAM (ms)", "Hash (ms)", "CAM speedup",
               "Selectivity"});
  for (std::uint64_t build_n : {256ull, 1024ull, 2048ull, 4096ull, 8192ull, 16384ull}) {
    std::vector<std::uint32_t> build(build_n);
    for (auto& v : build) v = static_cast<std::uint32_t>(rng.next_bits(20));
    const auto rc = cam.run(build, probe);
    const auto rh = hash.run(build, probe);
    if (rc.matches != rh.matches) {
      std::fprintf(stderr, "MATCH COUNT DISAGREEMENT\n");
      return 1;
    }
    const std::uint64_t passes = (build_n + 2047) / 2048;
    t.add_row({TextTable::num(build_n), TextTable::num(passes),
               TextTable::num(rc.milliseconds(), 3), TextTable::num(rh.milliseconds(), 3),
               TextTable::num(rh.milliseconds() / rc.milliseconds(), 2) + "x",
               TextTable::num(100.0 * static_cast<double>(rc.matches) /
                                  static_cast<double>(probe.size()),
                              1) +
                   "%"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Build sides that fit the CAM probe ~4x faster than the hash pipeline\n"
      "(4 key lanes, no chains); past 2K keys each partition pass replays\n"
      "the whole probe column and the hash table wins - the same capacity\n"
      "cliff the intersect-crossover ablation shows for graphs.\n");
  return 0;
}
