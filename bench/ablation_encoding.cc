// Ablation: result-encoding schemes (Table III's "Result Encoding").
//
// The block encoder is the main LUT consumer; this sweep quantifies each
// scheme's cost and verifies each produces its advertised result form on a
// live block with deliberately duplicated entries.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/block.h"
#include "src/common/table.h"
#include "src/model/resources.h"

using namespace dspcam;

int main() {
  bench::banner("Ablation: result-encoding schemes on a 128-cell block");

  TextTable t({"Scheme", "LUTs", "Result for duplicated key", "Search lat (cy)"});
  for (auto scheme : {cam::EncodingScheme::kPriorityIndex, cam::EncodingScheme::kOneHot,
                      cam::EncodingScheme::kMatchCount}) {
    cam::BlockConfig cfg;
    cfg.cell.data_width = 32;
    cfg.block_size = 128;
    cfg.bus_width = 512;
    cfg.encoding = scheme;
    cam::CamBlock block(cfg);

    // Store 7 at cells 2 and 5.
    cam::BlockRequest upd;
    upd.op = cam::OpKind::kUpdate;
    upd.words = {1, 2, 7, 3, 4, 7};
    block.issue(std::move(upd));
    bench::step(block);

    cam::BlockRequest srch;
    srch.op = cam::OpKind::kSearch;
    srch.key = 7;
    block.issue(std::move(srch));
    unsigned lat = 0;
    for (unsigned cycle = 1; cycle <= 8; ++cycle) {
      bench::step(block);
      if (block.response().has_value()) {
        lat = cycle;
        break;
      }
    }
    const auto& resp = *block.response();
    std::string result;
    switch (scheme) {
      case cam::EncodingScheme::kPriorityIndex:
        result = "first match @ cell " + std::to_string(resp.first_match);
        break;
      case cam::EncodingScheme::kOneHot:
        result = "raw lines: cell2=" + std::to_string(resp.raw.test(2)) +
                 " cell5=" + std::to_string(resp.raw.test(5)) +
                 " (popcount " + std::to_string(resp.raw.count()) + ")";
        break;
      case cam::EncodingScheme::kMatchCount:
        result = "match count = " + std::to_string(resp.match_count);
        break;
    }
    t.add_row({cam::to_string(scheme), TextTable::num(model::block_resources(cfg).luts),
               result, std::to_string(lat)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "One-hot is cheapest (wires plus the output register), the priority\n"
      "encoder adds the index tree, and match-count adds a popcount tree;\n"
      "latency is identical - the scheme changes wiring, not pipeline depth.\n");
  return 0;
}
