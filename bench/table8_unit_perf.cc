// Reproduces paper Table VIII: CAM unit performance for 32-bit data.
//
// Unit sizes 128..8192, block size 256 (128 for the 128-entry unit), 512-bit
// bus. Update and search latency are *measured* on the cycle-accurate unit
// (randomly updating and searching a single value, as the paper does);
// throughputs derive from the timing model's frequency with the measured
// initiation interval of 1.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/unit.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/model/timing.h"

using namespace dspcam;

int main(int argc, char** argv) {
  bench::banner("Table VIII: CAM performance for 32-bit data (paper in parentheses)");
  auto json = bench::JsonLog::from_args(argc, argv);

  struct PaperRow {
    unsigned entries;
    unsigned update;
    unsigned search;
    unsigned upd_mops;
    unsigned srch_mops;
  };
  const PaperRow paper[] = {{128, 6, 7, 4800, 300},
                            {512, 6, 7, 4800, 300},
                            {2048, 6, 8, 4800, 300},
                            {4096, 6, 8, 4064, 254},
                            {8192, 6, 8, 3840, 240}};

  Rng rng(2025);
  TextTable t({"CAM size", "Upd lat (cy)", "Srch lat (cy)", "Upd Mop/s", "Srch Mop/s",
               "Search II"});
  for (const auto& row : paper) {
    cam::UnitConfig cfg;
    cfg.block.cell.data_width = 32;
    cfg.block.block_size = row.entries < 256 ? row.entries : 256;
    cfg.block.bus_width = 512;
    cfg.unit_size = row.entries / cfg.block.block_size;
    cfg.bus_width = 512;
    cfg = cam::UnitConfig::with_auto_timing(cfg);
    cam::CamUnit unit(cfg);

    // Randomly update a single value, then search it (the paper's protocol).
    const cam::Word value = rng.next_bits(32);
    const unsigned upd_lat = bench::measure_unit_update_latency(unit);
    // The measured beat also stored `42`; search the random value after
    // loading it.
    {
      cam::UnitRequest req;
      req.op = cam::OpKind::kUpdate;
      req.words = {value};
      req.seq = 1;
      unit.issue(std::move(req));
      for (int i = 0; i < 10; ++i) bench::step(unit);
    }
    const unsigned srch_lat = bench::measure_unit_search_latency(unit, value);
    const double ii = bench::measure_unit_search_ii(unit, 64);
    const auto rates = model::unit_rates(cfg);

    t.add_row({std::to_string(row.entries),
               bench::vs_paper(std::to_string(upd_lat), std::to_string(row.update)),
               bench::vs_paper(std::to_string(srch_lat), std::to_string(row.search)),
               bench::vs_paper(TextTable::num(rates.update_mops, 0),
                               TextTable::num(std::uint64_t{row.upd_mops})),
               bench::vs_paper(TextTable::num(rates.search_mops, 0),
                               TextTable::num(std::uint64_t{row.srch_mops})),
               TextTable::num(ii, 2)});
    json.emit(bench::JsonLog::Row("table8_unit_perf")
                  .num("entries", std::uint64_t{row.entries})
                  .num("update_latency_cycles", std::uint64_t{upd_lat})
                  .num("search_latency_cycles", std::uint64_t{srch_lat})
                  .num("update_mops", rates.update_mops)
                  .num("search_mops", rates.search_mops)
                  .num("search_ii", ii)
                  .num("paper_update_latency_cycles", std::uint64_t{row.update})
                  .num("paper_search_latency_cycles", std::uint64_t{row.search}));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Update latency is constant (simpler datapath); search latency gains a\n"
      "cycle above 2K entries from the encoder output buffer; throughput is\n"
      "f x 16 words (updates) and f x 1 key (searches) at II = 1.\n");
  return 0;
}
