// Ablation: multi-query group count M.
//
// The paper's headline architectural feature is the runtime-configurable
// CAM-group mechanism (Section III-C): M groups serve M concurrent queries
// at the cost of M-fold data replication. This sweep quantifies that
// trade-off on one 2048-entry unit: aggregate search throughput scales
// linearly with M while per-group capacity shrinks as 1/M, and latency is
// unchanged. Measured on the cycle-accurate unit.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/unit.h"
#include "src/common/table.h"
#include "src/model/timing.h"

using namespace dspcam;

int main() {
  bench::banner("Ablation: group count M on a 2048 x 32b unit (16 blocks of 128)");

  cam::UnitConfig cfg;
  cfg.block.cell.data_width = 32;
  cfg.block.block_size = 128;
  cfg.block.bus_width = 512;
  cfg.unit_size = 16;
  cfg.bus_width = 512;
  cfg = cam::UnitConfig::with_auto_timing(cfg);
  const double freq = model::unit_frequency_mhz(cfg);

  TextTable t({"M (groups)", "Entries/group", "Search lat (cy)", "Keys/cycle",
               "Aggregate Msearch/s", "Update Mword/s"});
  for (unsigned m : {1u, 2u, 4u, 8u, 16u}) {
    cam::CamUnit unit(cfg);
    unit.configure_groups(m);

    // Load a small data set, measure latency, then stream M-key beats to
    // verify the unit really answers M keys per cycle.
    {
      cam::UnitRequest req;
      req.op = cam::OpKind::kUpdate;
      for (cam::Word w = 0; w < 16; ++w) req.words.push_back(w);
      req.seq = 1;
      unit.issue(std::move(req));
      for (int i = 0; i < 10; ++i) bench::step(unit);
    }
    const unsigned lat = bench::measure_unit_search_latency(unit, 3);

    constexpr unsigned kBeats = 64;
    unsigned keys_answered = 0;
    unsigned beats_seen = 0;
    for (unsigned cyc = 0; cyc < kBeats + 16; ++cyc) {
      if (cyc < kBeats) {
        cam::UnitRequest req;
        req.op = cam::OpKind::kSearch;
        for (unsigned k = 0; k < m; ++k) req.keys.push_back((cyc + k) % 24);
        req.seq = 100 + cyc;
        unit.issue(std::move(req));
      }
      bench::step(unit);
      if (unit.response().has_value()) {
        ++beats_seen;
        keys_answered += static_cast<unsigned>(unit.response()->results.size());
      }
    }
    const double keys_per_cycle =
        static_cast<double>(keys_answered) / static_cast<double>(kBeats);
    const auto rates = model::unit_rates(cfg, m);

    t.add_row({std::to_string(m), std::to_string(cfg.total_entries() / m),
               std::to_string(lat), TextTable::num(keys_per_cycle, 2),
               TextTable::num(rates.aggregate_search_mops, 0),
               TextTable::num(rates.update_mops, 0)});
    (void)beats_seen;
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Aggregate search throughput scales linearly with M at %.0f MHz while\n"
      "latency stays constant; the price is M-fold replication (capacity\n"
      "per data set shrinks from 2048 to 128 entries at M = 16).\n",
      freq);
  return 0;
}
