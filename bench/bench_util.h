// Shared helpers for the table-reproduction bench binaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cam/unit.h"
#include "src/common/table.h"
#include "src/telemetry/metrics.h"

namespace dspcam::bench {

/// Flags shared by the bench harnesses:
///   --json <path>  append machine-readable JSON-lines rows to <path>
///   --warmup N     unmeasured runs before timing starts (default 1)
///   --repeat N     measured runs aggregated into median +- stddev (default 5)
struct BenchOptions {
  std::string json_path;
  unsigned warmup = 1;
  unsigned repeat = 5;

  /// Parses the common flags; unknown arguments are ignored so harnesses can
  /// layer their own. `default_json` (may be empty) is used when --json is
  /// absent, letting a harness always emit its artifact.
  static BenchOptions from_args(int argc, char** argv,
                                std::string default_json = "") {
    BenchOptions opt;
    opt.json_path = std::move(default_json);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        opt.json_path = argv[++i];
      } else if (arg == "--warmup" && i + 1 < argc) {
        opt.warmup = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      } else if (arg == "--repeat" && i + 1 < argc) {
        opt.repeat = std::max(1u, static_cast<unsigned>(
                                      std::strtoul(argv[++i], nullptr, 10)));
      }
    }
    return opt;
  }
};

/// Summary statistics over repeated measurements of one metric.
struct RepeatStats {
  double median = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  unsigned samples = 0;

  static RepeatStats of(std::vector<double> xs) {
    RepeatStats st;
    if (xs.empty()) return st;
    st.samples = static_cast<unsigned>(xs.size());
    std::sort(xs.begin(), xs.end());
    st.min = xs.front();
    st.max = xs.back();
    const std::size_t mid = xs.size() / 2;
    st.median = xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
    double sum = 0;
    for (const double x : xs) sum += x;
    st.mean = sum / static_cast<double>(xs.size());
    double var = 0;
    for (const double x : xs) var += (x - st.mean) * (x - st.mean);
    st.stddev = xs.size() > 1
                    ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                    : 0.0;
    return st;
  }
};

/// Runs `measure_once` (returning one scalar metric) warmup + repeat times
/// and aggregates the measured runs.
template <typename Fn>
RepeatStats measure_repeated(const BenchOptions& opt, Fn&& measure_once) {
  for (unsigned i = 0; i < opt.warmup; ++i) (void)measure_once();
  std::vector<double> samples;
  samples.reserve(opt.repeat);
  for (unsigned i = 0; i < opt.repeat; ++i) samples.push_back(measure_once());
  return RepeatStats::of(std::move(samples));
}

/// Two-metric variant: `measure_once` returns {primary, secondary} and BOTH
/// series exclude the warmup runs. (Pushing the secondary metric into a
/// side vector from inside the measured lambda counts warmup runs too,
/// skewing its sample count and stats relative to the primary's - the bug
/// this helper replaces.)
template <typename Fn>
std::pair<RepeatStats, RepeatStats> measure_repeated_pair(
    const BenchOptions& opt, Fn&& measure_once) {
  for (unsigned i = 0; i < opt.warmup; ++i) (void)measure_once();
  std::vector<double> primary, secondary;
  primary.reserve(opt.repeat);
  secondary.reserve(opt.repeat);
  for (unsigned i = 0; i < opt.repeat; ++i) {
    const std::pair<double, double> sample = measure_once();
    primary.push_back(sample.first);
    secondary.push_back(sample.second);
  }
  return {RepeatStats::of(std::move(primary)),
          RepeatStats::of(std::move(secondary))};
}

/// Machine-readable bench output: when a harness is invoked with
/// `--json <path>`, every result row is also appended to <path> as one JSON
/// object per line (JSON Lines), so sweeps can be diffed and plotted without
/// scraping the human tables. Without the flag the logger is inert.
class JsonLog {
 public:
  JsonLog() = default;

  /// A logger writing to `path` (inert when empty).
  explicit JsonLog(std::string path) : path_(std::move(path)) {}

  /// Parses `--json <path>` out of the command line (other args ignored).
  static JsonLog from_args(int argc, char** argv) {
    JsonLog log;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        log.path_ = argv[i + 1];
        break;
      }
    }
    return log;
  }

  /// Logger bound to the options' json path (possibly the harness default).
  static JsonLog from_options(const BenchOptions& opt) { return JsonLog(opt.json_path); }

  bool enabled() const noexcept { return !path_.empty(); }

  /// One result row under construction; fields keep insertion order.
  class Row {
   public:
    explicit Row(std::string bench) { str("bench", std::move(bench)); }
    Row& str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, "\"" + escape(value) + "\"");
      return *this;
    }
    Row& num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& num(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& boolean(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }
    /// Embeds pre-serialised JSON verbatim (an object/array value, e.g. a
    /// MetricRegistry::to_json() snapshot). The caller guarantees validity.
    Row& raw(const std::string& key, std::string json) {
      fields_.emplace_back(key, std::move(json));
      return *this;
    }
    std::string to_json() const {
      std::string out = "{";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + escape(fields_[i].first) + "\": " + fields_[i].second;
      }
      return out + "}";
    }

   private:
    static std::string escape(const std::string& s) {
      std::string out;
      out.reserve(s.size());
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (c == '\n') {
          out += "\\n";
        } else {
          out += c;
        }
      }
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Appends one row (no-op when --json was not given). The file is
  /// truncated on the first emit of the process, appended after.
  void emit(const Row& row) {
    if (!enabled()) return;
    std::ofstream out(path_, opened_ ? std::ios::app : std::ios::trunc);
    opened_ = true;
    out << row.to_json() << "\n";
  }

 private:
  std::string path_;
  bool opened_ = false;
};

/// Appends a RepeatStats as `<prefix>_{median,mean,stddev,min,max}` fields.
inline JsonLog::Row& add_stats(JsonLog::Row& row, const std::string& prefix,
                               const RepeatStats& st) {
  row.num(prefix + "_median", st.median)
      .num(prefix + "_mean", st.mean)
      .num(prefix + "_stddev", st.stddev)
      .num(prefix + "_min", st.min)
      .num(prefix + "_max", st.max)
      .num(prefix + "_samples", static_cast<std::uint64_t>(st.samples));
  return row;
}

/// Embeds a telemetry snapshot in a bench row: the registry's full metric
/// dump (counters, gauges, histogram summaries) lands under a "telemetry"
/// key, so BENCH_*.json rows carry the observability state alongside the
/// measured figures.
inline JsonLog::Row& add_telemetry(JsonLog::Row& row,
                                   const telemetry::MetricRegistry& registry) {
  row.raw("telemetry", registry.to_json());
  return row;
}

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Formats "measured (paper X)" cells.
inline std::string vs_paper(const std::string& measured, const std::string& paper) {
  return measured + " (paper " + paper + ")";
}

/// Steps a self-clocking component one cycle.
template <typename C>
void step(C& c) {
  c.eval();
  c.commit();
}

/// Measures a CAM unit's end-to-end update latency in cycles: issue one
/// update beat into an idle unit and count cycles until the ack appears.
inline unsigned measure_unit_update_latency(cam::CamUnit& unit) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kUpdate;
  req.words = {42};
  req.seq = 987654;
  unit.issue(std::move(req));
  for (unsigned cycle = 1; cycle <= 64; ++cycle) {
    step(unit);
    if (unit.update_ack().has_value() && unit.update_ack()->seq == 987654) {
      return cycle;
    }
  }
  return 0;
}

/// Measures a CAM unit's end-to-end search latency in cycles.
inline unsigned measure_unit_search_latency(cam::CamUnit& unit, cam::Word key) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kSearch;
  req.keys = {key};
  req.seq = 123456;
  unit.issue(std::move(req));
  for (unsigned cycle = 1; cycle <= 64; ++cycle) {
    step(unit);
    if (unit.response().has_value() && unit.response()->seq == 123456) {
      return cycle;
    }
  }
  return 0;
}

/// Verifies initiation interval 1 by streaming `ops` searches back-to-back
/// and returning ops per cycle over the issue window (1.0 = fully pipelined).
inline double measure_unit_search_ii(cam::CamUnit& unit, unsigned ops) {
  unsigned responses = 0;
  unsigned cycles = 0;
  for (unsigned cyc = 0; responses < ops && cyc < ops + 64; ++cyc) {
    if (cyc < ops) {
      cam::UnitRequest req;
      req.op = cam::OpKind::kSearch;
      req.keys = {cyc};
      req.seq = 1000000 + cyc;
      unit.issue(std::move(req));
    }
    step(unit);
    ++cycles;
    if (unit.response().has_value()) ++responses;
  }
  // Subtract the pipeline fill to get the steady-state rate.
  const unsigned steady = cycles > unit.search_latency() ? cycles - unit.search_latency() : 1;
  return static_cast<double>(responses) / static_cast<double>(steady);
}

}  // namespace dspcam::bench
