// Shared helpers for the table-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "src/cam/unit.h"
#include "src/common/table.h"

namespace dspcam::bench {

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Formats "measured (paper X)" cells.
inline std::string vs_paper(const std::string& measured, const std::string& paper) {
  return measured + " (paper " + paper + ")";
}

/// Steps a self-clocking component one cycle.
template <typename C>
void step(C& c) {
  c.eval();
  c.commit();
}

/// Measures a CAM unit's end-to-end update latency in cycles: issue one
/// update beat into an idle unit and count cycles until the ack appears.
inline unsigned measure_unit_update_latency(cam::CamUnit& unit) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kUpdate;
  req.words = {42};
  req.seq = 987654;
  unit.issue(std::move(req));
  for (unsigned cycle = 1; cycle <= 64; ++cycle) {
    step(unit);
    if (unit.update_ack().has_value() && unit.update_ack()->seq == 987654) {
      return cycle;
    }
  }
  return 0;
}

/// Measures a CAM unit's end-to-end search latency in cycles.
inline unsigned measure_unit_search_latency(cam::CamUnit& unit, cam::Word key) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kSearch;
  req.keys = {key};
  req.seq = 123456;
  unit.issue(std::move(req));
  for (unsigned cycle = 1; cycle <= 64; ++cycle) {
    step(unit);
    if (unit.response().has_value() && unit.response()->seq == 123456) {
      return cycle;
    }
  }
  return 0;
}

/// Verifies initiation interval 1 by streaming `ops` searches back-to-back
/// and returning ops per cycle over the issue window (1.0 = fully pipelined).
inline double measure_unit_search_ii(cam::CamUnit& unit, unsigned ops) {
  unsigned responses = 0;
  unsigned cycles = 0;
  for (unsigned cyc = 0; responses < ops && cyc < ops + 64; ++cyc) {
    if (cyc < ops) {
      cam::UnitRequest req;
      req.op = cam::OpKind::kSearch;
      req.keys = {cyc};
      req.seq = 1000000 + cyc;
      unit.issue(std::move(req));
    }
    step(unit);
    ++cycles;
    if (unit.response().has_value()) ++responses;
  }
  // Subtract the pipeline fill to get the steady-state rate.
  const unsigned steady = cycles > unit.search_latency() ? cycles - unit.search_latency() : 1;
  return static_cast<double>(responses) / static_cast<double>(steady);
}

}  // namespace dspcam::bench
