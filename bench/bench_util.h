// Shared helpers for the table-reproduction bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cam/unit.h"
#include "src/common/table.h"

namespace dspcam::bench {

/// Machine-readable bench output: when a harness is invoked with
/// `--json <path>`, every result row is also appended to <path> as one JSON
/// object per line (JSON Lines), so sweeps can be diffed and plotted without
/// scraping the human tables. Without the flag the logger is inert.
class JsonLog {
 public:
  JsonLog() = default;

  /// Parses `--json <path>` out of the command line (other args ignored).
  static JsonLog from_args(int argc, char** argv) {
    JsonLog log;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        log.path_ = argv[i + 1];
        break;
      }
    }
    return log;
  }

  bool enabled() const noexcept { return !path_.empty(); }

  /// One result row under construction; fields keep insertion order.
  class Row {
   public:
    explicit Row(std::string bench) { str("bench", std::move(bench)); }
    Row& str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, "\"" + escape(value) + "\"");
      return *this;
    }
    Row& num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& num(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& boolean(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }
    std::string to_json() const {
      std::string out = "{";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + escape(fields_[i].first) + "\": " + fields_[i].second;
      }
      return out + "}";
    }

   private:
    static std::string escape(const std::string& s) {
      std::string out;
      out.reserve(s.size());
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (c == '\n') {
          out += "\\n";
        } else {
          out += c;
        }
      }
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Appends one row (no-op when --json was not given). The file is
  /// truncated on the first emit of the process, appended after.
  void emit(const Row& row) {
    if (!enabled()) return;
    std::ofstream out(path_, opened_ ? std::ios::app : std::ios::trunc);
    opened_ = true;
    out << row.to_json() << "\n";
  }

 private:
  std::string path_;
  bool opened_ = false;
};

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Formats "measured (paper X)" cells.
inline std::string vs_paper(const std::string& measured, const std::string& paper) {
  return measured + " (paper " + paper + ")";
}

/// Steps a self-clocking component one cycle.
template <typename C>
void step(C& c) {
  c.eval();
  c.commit();
}

/// Measures a CAM unit's end-to-end update latency in cycles: issue one
/// update beat into an idle unit and count cycles until the ack appears.
inline unsigned measure_unit_update_latency(cam::CamUnit& unit) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kUpdate;
  req.words = {42};
  req.seq = 987654;
  unit.issue(std::move(req));
  for (unsigned cycle = 1; cycle <= 64; ++cycle) {
    step(unit);
    if (unit.update_ack().has_value() && unit.update_ack()->seq == 987654) {
      return cycle;
    }
  }
  return 0;
}

/// Measures a CAM unit's end-to-end search latency in cycles.
inline unsigned measure_unit_search_latency(cam::CamUnit& unit, cam::Word key) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kSearch;
  req.keys = {key};
  req.seq = 123456;
  unit.issue(std::move(req));
  for (unsigned cycle = 1; cycle <= 64; ++cycle) {
    step(unit);
    if (unit.response().has_value() && unit.response()->seq == 123456) {
      return cycle;
    }
  }
  return 0;
}

/// Verifies initiation interval 1 by streaming `ops` searches back-to-back
/// and returning ops per cycle over the issue window (1.0 = fully pipelined).
inline double measure_unit_search_ii(cam::CamUnit& unit, unsigned ops) {
  unsigned responses = 0;
  unsigned cycles = 0;
  for (unsigned cyc = 0; responses < ops && cyc < ops + 64; ++cyc) {
    if (cyc < ops) {
      cam::UnitRequest req;
      req.op = cam::OpKind::kSearch;
      req.keys = {cyc};
      req.seq = 1000000 + cyc;
      unit.issue(std::move(req));
    }
    step(unit);
    ++cycles;
    if (unit.response().has_value()) ++responses;
  }
  // Subtract the pipeline fill to get the steady-state rate.
  const unsigned steady = cycles > unit.search_latency() ? cycles - unit.search_latency() : 1;
  return static_cast<double>(responses) / static_cast<double>(steady);
}

}  // namespace dspcam::bench
