// Fault-injection campaign bench: detection coverage with and without
// per-entry parity protection.
//
// For three CAM geometries, a driver-hosted campaign corrupts the array at a
// fixed per-cycle rate while a search stream runs, then lets the background
// scrubber walk the (now idle) array. With BlockConfig::parity on, a
// corrupted entry disagrees with its stored parity bit: searches touching
// the block come back flagged and the scrub pass classifies the upset as
// detected. With parity off the same campaign produces bit-identical match
// behaviour changes but zero flags - every upset is silent until the scrub's
// golden-shadow comparison finds it. The JSON artifact
// (BENCH_fault_campaign.json) records injected/detected/corrected/silent
// counters, the parity_flagged stat, and the resulting detection coverage
// for both settings at each geometry.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/injector.h"
#include "src/fault/scrubber.h"
#include "src/system/cam_system.h"
#include "src/system/driver.h"
#include "src/telemetry/metrics.h"

namespace dspcam::bench {
namespace {

struct Geometry {
  const char* name;
  unsigned unit_size;
  unsigned block_size;
};

struct CampaignResult {
  sim::FaultStats injector;
  sim::FaultStats scrubber;
  std::uint64_t parity_flagged = 0;
  std::uint64_t searches = 0;
  std::uint64_t cycles = 0;
};

CampaignResult run_campaign(const Geometry& geo, bool parity, double rate,
                            std::uint64_t seed) {
  system::CamSystem::Config cfg;
  cfg.unit.block.cell.data_width = 32;
  cfg.unit.block.block_size = geo.block_size;
  cfg.unit.block.bus_width = 512;
  cfg.unit.block.parity = parity;
  cfg.unit.unit_size = geo.unit_size;
  cfg.unit.bus_width = 512;
  system::CamSystem sys(cfg);
  system::CamDriver drv(sys);

  // Fill half the array, shadow it, then run the campaign over a search
  // stream (the injector fires from the driver's cycle hook, so corruption
  // interleaves with live traffic exactly as in the acceptance tests).
  const unsigned entries = geo.unit_size * geo.block_size;
  std::vector<cam::Word> words;
  words.reserve(entries / 2);
  for (unsigned i = 0; i < entries / 2; ++i) words.push_back(i * 2 + 1);
  drv.store(words);

  fault::FaultTarget* target = sys.fault_target();
  fault::FaultCampaign campaign;
  campaign.seed = seed;
  campaign.rate_per_cycle = rate;
  campaign.include_parity = parity;
  fault::FaultInjector injector(*target, campaign);
  fault::Scrubber scrubber(*target, {});
  scrubber.capture();

  drv.set_cycle_hook([&] {
    injector.step();
    scrubber.step(sys.idle());
  });

  CampaignResult res;
  for (unsigned round = 0; round < 4; ++round) {
    for (const cam::Word w : words) {
      cam::UnitRequest req;
      req.op = cam::OpKind::kSearch;
      req.keys = {w};
      drv.submit_async(std::move(req));
      ++res.searches;
    }
    drv.drain();
    while (drv.try_pop_completion()) {
    }
  }
  // Idle tail: the scrubber finishes its walk over the quiet array.
  for (unsigned i = 0; i < 2 * entries; ++i) drv.poll();

  res.injector = injector.stats();
  res.scrubber = scrubber.stats();
  res.parity_flagged = sys.stats().parity_flagged;
  res.cycles = drv.cycles();
  return res;
}

}  // namespace
}  // namespace dspcam::bench

int main(int argc, char** argv) {
  using namespace dspcam::bench;
  const BenchOptions opt =
      BenchOptions::from_args(argc, argv, "BENCH_fault_campaign.json");
  JsonLog log = JsonLog::from_options(opt);

  banner("Fault campaign: detection coverage, parity on vs off");
  std::printf("%-10s %-7s %9s %9s %9s %8s %10s %9s\n", "geometry", "parity",
              "injected", "detected", "silent", "correct", "flagged", "coverage");

  const Geometry geometries[] = {
      {"4x32", 4, 32}, {"8x64", 8, 64}, {"16x128", 16, 128}};
  const double rate = 0.02;
  for (const Geometry& geo : geometries) {
    for (const bool parity : {false, true}) {
      const CampaignResult r = run_campaign(geo, parity, rate, /*seed=*/2025);
      const std::uint64_t classified = r.scrubber.detected + r.scrubber.silent;
      const double coverage =
          classified == 0 ? 0.0
                          : static_cast<double>(r.scrubber.detected) /
                                static_cast<double>(classified);
      std::printf("%-10s %-7s %9llu %9llu %9llu %8llu %10llu %8.1f%%\n",
                  geo.name, parity ? "on" : "off",
                  static_cast<unsigned long long>(r.injector.injected),
                  static_cast<unsigned long long>(r.scrubber.detected),
                  static_cast<unsigned long long>(r.scrubber.silent),
                  static_cast<unsigned long long>(r.scrubber.corrected),
                  static_cast<unsigned long long>(r.parity_flagged),
                  100.0 * coverage);

      JsonLog::Row row("fault_campaign");
      row.str("geometry", geo.name)
          .boolean("parity", parity)
          .num("rate_per_cycle", rate)
          .num("cycles", r.cycles)
          .num("searches", r.searches)
          .num("injected", r.injector.injected)
          .num("detected", r.scrubber.detected)
          .num("silent", r.scrubber.silent)
          .num("corrected", r.scrubber.corrected)
          .num("parity_flagged", r.parity_flagged)
          .num("detection_coverage", coverage);
      {
        // Mirror the campaign's counters through the telemetry layer so the
        // JSON row carries the same "fault.*" names the live stack exports.
        dspcam::telemetry::MetricRegistry registry;
        r.injector.record_telemetry(registry, "fault.injector");
        r.scrubber.record_telemetry(registry, "fault.scrubber");
        add_telemetry(row, registry);
      }
      log.emit(row);
    }
  }
  std::printf(
      "\ncoverage = detected / (detected + silent) over scrub-classified "
      "upsets.\nParity-off rows classify everything silent by construction: "
      "the scrub\npass can still repair from the golden shadow, but nothing "
      "flags the\ncorrupt window in between - the gap the parity bit "
      "closes.\n");
  return 0;
}
