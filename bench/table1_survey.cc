// Reproduces paper Table I: survey of recent CAM designs on FPGA.
//
// Prior rows are the literature's published numbers; the "Ours" row is this
// reproduction's own model/measurement at the paper's maximum configuration
// (9728 x 48 bits): resources from the calibrated system model, latencies
// measured on the cycle-accurate CAM unit.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/unit.h"
#include "src/common/table.h"
#include "src/model/survey.h"

using namespace dspcam;

namespace {

std::string opt(std::int64_t v) { return v < 0 ? "-" : TextTable::num(static_cast<std::uint64_t>(v)); }

}  // namespace

int main() {
  bench::banner("Table I: A survey of recent CAM designs on FPGA");

  TextTable t({"Design", "Category", "Platform", "Max CAM size", "MHz", "LUT", "BRAM",
               "DSP", "Upd (cy)", "Srch (cy)"});
  for (const auto& e : model::full_survey()) {
    t.add_row({e.name, model::to_string(e.category), e.platform,
               TextTable::num(std::uint64_t{e.entries}) + " x " +
                   std::to_string(e.width) + "b",
               TextTable::num(e.freq_mhz, 0), opt(e.luts), opt(e.brams), opt(e.dsps),
               opt(e.update_cycles), opt(e.search_cycles)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Verify the "Ours" latencies against the cycle-accurate unit at the
  // maximum configuration (38 blocks x 256 cells x 48 bits).
  cam::UnitConfig cfg;
  cfg.block.cell.data_width = 48;
  cfg.block.block_size = 256;
  cfg.block.bus_width = 480;
  cfg.unit_size = 38;
  cfg.bus_width = 480;
  cfg = cam::UnitConfig::with_auto_timing(cfg);
  cam::CamUnit unit(cfg);
  const unsigned upd = bench::measure_unit_update_latency(unit);
  const unsigned srch = bench::measure_unit_search_latency(unit, 42);
  std::printf(
      "Cycle-accurate verification at 9728 x 48b: update latency = %u (paper 6),\n"
      "search latency = %u (paper 8). 4 BRAMs in the survey row are the bus\n"
      "interface FIFOs of the system wrapper.\n",
      upd, srch);
  return 0;
}
