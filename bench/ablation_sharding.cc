// Ablation: multi-unit sharding (ShardedCamEngine) - aggregate search
// throughput versus shard count.
//
// One CAM unit pops one request per cycle, so a single system tops out at
// M keys/cycle (its group count). The sharded engine hash-partitions the
// key space over S identical units stepping in lockstep; the host streams
// wide search beats through the async driver and the engine splits them
// into per-shard sub-beats. Ideal scaling is S x; the measured curve falls
// short of ideal by the hash imbalance within each beat (a shard that
// receives more keys than its group count serialises the excess) - exactly
// the load-balancing behaviour a deployment should size credits for.
//
// Usage: ablation_sharding [--json <path>]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/system/driver.h"
#include "src/system/sharded_engine.h"

using namespace dspcam;

namespace {

system::CamSystem::Config shard_config() {
  system::CamSystem::Config cfg;
  cfg.unit.block.cell.data_width = 32;
  cfg.unit.block.block_size = 32;
  cfg.unit.block.bus_width = 512;
  cfg.unit.unit_size = 4;  // 128 entries
  cfg.unit.bus_width = 512;
  cfg.unit.initial_groups = 4;  // 4 search lanes, 32 entries per group
  cfg.request_fifo_depth = 64;
  cfg.response_fifo_depth = 64;
  cfg.ack_fifo_depth = 64;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: multi-unit sharding (hash-partitioned search throughput)");
  auto json = bench::JsonLog::from_args(argc, argv);

  constexpr unsigned kSearches = 8192;
  double base_rate = 0;

  TextTable t({"Shards", "Lanes", "Load (cy)", "Search (cy)", "Keys/cycle",
               "Speedup", "Ideal"});
  for (const unsigned s : {1u, 2u, 4u, 8u}) {
    system::ShardedCamEngine::Config ecfg;
    ecfg.shards = s;
    ecfg.partition = system::ShardedCamEngine::Partition::kHash;
    ecfg.credits_per_shard = 64;
    system::ShardedCamEngine engine(ecfg, shard_config());
    system::CamDriver drv(engine);

    // Fill to ~50% aggregate load so hash imbalance cannot overflow a shard.
    Rng rng(7 + s);
    std::vector<cam::Word> stored(engine.capacity() / 2);
    for (auto& w : stored) w = rng.next_bits(32);
    const auto load_start = drv.cycles();
    drv.store(stored);
    const auto load_cycles = drv.cycles() - load_start;

    // Stream full-width search beats; half the keys are stored values.
    const unsigned per_beat = engine.max_keys_per_beat();
    std::vector<cam::Word> keys(kSearches);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = (i % 2 == 0) ? stored[rng.next_below(stored.size())]
                             : rng.next_bits(32);
    }
    const auto start = drv.cycles();
    std::size_t pos = 0;
    while (pos < keys.size()) {
      const std::size_t n = std::min<std::size_t>(per_beat, keys.size() - pos);
      cam::UnitRequest req;
      req.op = cam::OpKind::kSearch;
      for (std::size_t i = 0; i < n; ++i) req.keys.push_back(keys[pos + i]);
      drv.submit_async(std::move(req));
      pos += n;
    }
    drv.drain();
    const auto cycles = drv.cycles() - start;
    while (drv.try_pop_completion()) {
    }

    const double rate = static_cast<double>(kSearches) / static_cast<double>(cycles);
    if (s == 1) base_rate = rate;
    const double speedup = rate / base_rate;

    t.add_row({std::to_string(s), std::to_string(per_beat),
               std::to_string(load_cycles), std::to_string(cycles),
               TextTable::num(rate, 2), TextTable::num(speedup, 2),
               TextTable::num(static_cast<double>(s), 1)});
    json.emit(bench::JsonLog::Row("ablation_sharding")
                  .num("shards", std::uint64_t{s})
                  .num("search_lanes", std::uint64_t{per_beat})
                  .num("load_cycles", load_cycles)
                  .num("search_cycles", cycles)
                  .num("keys_per_cycle", rate)
                  .num("speedup", speedup));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Aggregate search throughput scales with the shard count; the gap to\n"
      "ideal is per-beat hash imbalance (a shard handed more keys than its\n"
      "group count serialises the excess sub-beat).\n");
  return 0;
}
