// Ablation: where does the CAM intersection beat the merge intersection?
//
// The case study's core claim is that set intersection drops from O(n+m)
// sequential comparisons to O(n) parallel searches (Section V-A). This
// sweep isolates the *differential* per-edge cost of one intersection by
// running each accelerator on the same graph with and without the edge
// under test and subtracting the cycle counts, as a function of the two
// adjacency-list lengths. It shows the crossover: for tiny lists per-edge
// overheads dominate and the designs tie; as lists grow, the merge cost
// grows with la+lb while the CAM cost grows with the key stream
// min(la,lb)/lanes, bounded below by the DDR fetch.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/graph/builder.h"
#include "src/tc/cam_accel.h"
#include "src/tc/merge_accel.h"

using namespace dspcam;

namespace {

/// Builds a graph where vertices a=0 and b=1 have adjacency lengths la and
/// lb (counting each other iff `with_edge`), sharing `common` neighbours.
graph::CsrGraph two_list_graph(unsigned la, unsigned lb, unsigned common,
                               bool with_edge) {
  std::vector<graph::Edge> edges;
  graph::VertexId next = 2;
  for (unsigned i = 0; i < common; ++i) {
    edges.emplace_back(0, next);
    edges.emplace_back(1, next);
    ++next;
  }
  // -1 leaves room for the (0,1) edge itself in the target length.
  for (unsigned i = common; i + 1 < la; ++i) edges.emplace_back(0, next++);
  for (unsigned i = common; i + 1 < lb; ++i) edges.emplace_back(1, next++);
  if (with_edge) edges.emplace_back(0, 1);
  return graph::build_undirected(next, edges);
}

/// Differential cycle cost of the (0,1) edge for one accelerator.
template <typename Accel>
std::uint64_t edge_cost(const Accel& accel, unsigned la, unsigned lb, unsigned common) {
  const auto with = accel.run(two_list_graph(la, lb, common, true)).cycles;
  const auto without = accel.run(two_list_graph(la, lb, common, false)).cycles;
  return with > without ? with - without : 0;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: differential per-edge intersection cost, merge vs CAM "
      "(2048-entry CAM, 4 key lanes)");

  const tc::MergeTcAccelerator merge;
  const tc::CamTcAccelerator cam;

  TextTable t({"|adj(a)|", "|adj(b)|", "Merge cycles/edge", "CAM cycles/edge",
               "CAM speedup"});
  for (unsigned l : {4u, 16u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const auto cm = edge_cost(merge, l, l, l / 4);
    const auto cc = edge_cost(cam, l, l, l / 4);
    t.add_row({std::to_string(l), std::to_string(l), TextTable::num(cm),
               TextTable::num(cc),
               TextTable::num(static_cast<double>(cm) / static_cast<double>(cc), 2) +
                   "x"});
  }
  std::printf("%s\n", t.to_string().c_str());

  bench::banner("Asymmetric lists (hub pattern: one long, one short)");
  TextTable t2({"|adj(a)|", "|adj(b)|", "Merge cycles/edge", "CAM cycles/edge",
                "CAM speedup"});
  for (unsigned ll : {64u, 256u, 1024u, 2048u, 4096u}) {
    const auto cm = edge_cost(merge, ll, 8, 4);
    const auto cc = edge_cost(cam, ll, 8, 4);
    t2.add_row({std::to_string(ll), "8", TextTable::num(cm), TextTable::num(cc),
                TextTable::num(static_cast<double>(cm) / static_cast<double>(cc), 2) +
                    "x"});
  }
  std::printf("%s\n", t2.to_string().c_str());
  std::printf(
      "Symmetric lists: the merge cost grows with la+lb while the CAM's key\n"
      "stream grows with lb/lanes, so the gap approaches 4x (the key-lane\n"
      "width) - then narrows again as the resident list consumes more CAM\n"
      "blocks and the group count M falls below the lane count (1024 -> M=2,\n"
      "2048 -> M=1): the grouping trade-off in one table. Asymmetric (hub)\n"
      "lists are the best case: the long list sits in the CAM while only 8\n"
      "keys stream through - the merge still walks the long list. That\n"
      "asymmetry is exactly what dominates as20000102 and soc-Slashdot in\n"
      "Table IX.\n");
  return 0;
}
