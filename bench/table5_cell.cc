// Reproduces paper Table V: CAM Cell Evaluation.
//
// Measures the cell's update and search latency in the cycle-accurate model
// for all three CAM types and reports the (structural) resource footprint.
// Expected: identical numbers across BCAM/TCAM/RMCAM - the configuration of
// OPMODE/ALUMODE/MASK does not change the cell.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/cell.h"
#include "src/cam/mask.h"
#include "src/common/table.h"
#include "src/model/resources.h"

using namespace dspcam;

namespace {

struct CellMeasurement {
  unsigned update_latency = 0;
  unsigned search_latency = 0;
};

CellMeasurement measure(cam::CamKind kind) {
  cam::CellConfig cfg;
  cfg.kind = kind;
  cfg.data_width = 48;
  cam::CamCell cell(cfg);

  CellMeasurement m;
  // Update: drive a write, count cycles until the stored word reads back.
  const cam::Word value = 0xBEEF'CAFE'1234ULL & low_bits(48);
  std::uint64_t mask = cam::width_mask(48);
  if (kind == cam::CamKind::kTernary) mask = cam::tcam_mask(48, 0xFF);
  if (kind == cam::CamKind::kRange) mask = cam::rmcam_mask(48, value & ~low_bits(4), 4);
  cell.drive_write(value, mask);
  for (unsigned cycle = 1; cycle <= 8; ++cycle) {
    bench::step(cell);
    if (cell.valid() && cell.stored() == truncate(value, 48)) {
      m.update_latency = cycle;
      break;
    }
  }
  // Search: drive the matching key, count cycles until the match line rises.
  cell.drive_search(value);
  for (unsigned cycle = 1; cycle <= 8; ++cycle) {
    bench::step(cell);
    if (cell.match()) {
      m.search_latency = cycle;
      break;
    }
  }
  return m;
}

}  // namespace

int main() {
  bench::banner("Table V: CAM Cell Evaluation (paper values in parentheses)");

  TextTable t({"Cell type", "Storage", "Update lat (cy)", "Search lat (cy)", "DSP",
               "LUT", "BRAM"});
  for (auto kind :
       {cam::CamKind::kBinary, cam::CamKind::kTernary, cam::CamKind::kRange}) {
    const auto m = measure(kind);
    cam::CellConfig cfg;
    cfg.kind = kind;
    cfg.data_width = 48;
    const auto r = model::cell_resources(cfg);
    t.add_row({cam::to_string(kind), "1 entry <= 48 bits",
               bench::vs_paper(std::to_string(m.update_latency), "1"),
               bench::vs_paper(std::to_string(m.search_latency), "2"),
               bench::vs_paper(std::to_string(r.dsps), "1"),
               bench::vs_paper(std::to_string(r.luts), "0"),
               bench::vs_paper(std::to_string(r.brams), "0")});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Resource and latency are identical across the three cell types: the\n"
      "OPMODE/ALUMODE/MASK configuration changes behaviour, not hardware.\n");
  return 0;
}
