// Reproduces paper Table VI: CAM Block Evaluation with different size.
//
// For each block size 32..512: update/search latency measured on the
// cycle-accurate block, throughput and resources from the calibrated model
// (LUT anchors are the paper's own numbers), frequency from the timing
// model. Update throughput counts data words (words-per-beat x f); search
// throughput counts keys (f), both pipelined at initiation interval 1 -
// the same accounting the paper uses (4800 / 300 Mop/s at 300 MHz).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cam/block.h"
#include "src/common/table.h"
#include "src/model/device.h"
#include "src/model/resources.h"
#include "src/model/timing.h"

using namespace dspcam;

namespace {

struct BlockMeasurement {
  unsigned update_latency = 0;
  unsigned search_latency = 0;
};

BlockMeasurement measure(const cam::BlockConfig& cfg) {
  cam::CamBlock block(cfg);
  BlockMeasurement m;

  cam::BlockRequest upd;
  upd.op = cam::OpKind::kUpdate;
  upd.words = {7, 8, 9};
  upd.tag.seq = 5;
  block.issue(std::move(upd));
  for (unsigned cycle = 1; cycle <= 16; ++cycle) {
    bench::step(block);
    if (block.update_ack().has_value()) {
      m.update_latency = cycle;
      break;
    }
  }

  cam::BlockRequest srch;
  srch.op = cam::OpKind::kSearch;
  srch.key = 8;
  srch.tag.seq = 6;
  block.issue(std::move(srch));
  for (unsigned cycle = 1; cycle <= 16; ++cycle) {
    bench::step(block);
    if (block.response().has_value()) {
      m.search_latency = cycle;
      break;
    }
  }
  return m;
}

}  // namespace

int main() {
  bench::banner("Table VI: CAM Block Evaluation (paper values in parentheses)");

  // Paper rows for comparison.
  struct PaperRow {
    unsigned size;
    unsigned search;
    unsigned luts;
    double lut_pct;
    double dsp_pct;
  };
  const PaperRow paper[] = {{32, 3, 694, 0.05, 0.26},
                            {64, 3, 745, 0.05, 0.52},
                            {128, 3, 808, 0.05, 1.04},
                            {256, 4, 1225, 0.07, 2.08},
                            {512, 4, 1371, 0.08, 4.17}};

  const auto device = model::alveo_u250();
  TextTable t({"CAM size", "Upd lat", "Srch lat", "Upd Mop/s", "Srch Mop/s", "LUTs",
               "LUT %", "DSP", "DSP %", "BRAM", "MHz"});
  for (const auto& row : paper) {
    cam::BlockConfig cfg;
    cfg.cell.data_width = 48;
    cfg.block_size = row.size;
    cfg.bus_width = 480;
    cfg.output_buffer = cam::BlockConfig::standalone_buffer_policy(row.size);
    const auto m = measure(cfg);
    const auto res = model::block_resources(cfg);
    const auto rates = model::block_rates(cfg);
    t.add_row({std::to_string(row.size),
               bench::vs_paper(std::to_string(m.update_latency), "1"),
               bench::vs_paper(std::to_string(m.search_latency),
                               std::to_string(row.search)),
               TextTable::num(rates.update_mops, 0),
               bench::vs_paper(TextTable::num(rates.search_mops, 0), "300"),
               bench::vs_paper(TextTable::num(res.luts), TextTable::num(row.luts)),
               TextTable::num(model::utilisation_pct(res.luts, device.luts), 2),
               std::to_string(res.dsps),
               bench::vs_paper(
                   TextTable::num(model::utilisation_pct(res.dsps, device.dsp), 2),
                   TextTable::num(row.dsp_pct, 2)),
               std::to_string(res.brams),
               TextTable::num(model::block_frequency_mhz(cfg), 0)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Note: the paper's 4800 Mop/s update rows correspond to 16 words/beat\n"
      "(32-bit words on a 512-bit bus); at 48-bit data the bus carries 10\n"
      "words/beat -> 3000 Mop/s at the same 300 MHz and II=1.\n");
  return 0;
}
