// Host-side microbenchmarks of the CAM block/unit simulation (google-
// benchmark): simulated cycles per host second across block sizes, i.e. the
// cost of running the reproduction itself.
#include <benchmark/benchmark.h>

#include "src/cam/block.h"
#include "src/cam/unit.h"

using namespace dspcam;

namespace {

void step_block(cam::CamBlock& b) {
  b.eval();
  b.commit();
}

void BM_BlockSearchCycle(benchmark::State& state) {
  cam::BlockConfig cfg;
  cfg.cell.data_width = 32;
  cfg.block_size = static_cast<unsigned>(state.range(0));
  cfg.bus_width = 512;
  cam::CamBlock block(cfg);
  cam::BlockRequest upd;
  upd.op = cam::OpKind::kUpdate;
  for (cam::Word w = 0; w < 16; ++w) upd.words.push_back(w);
  block.issue(std::move(upd));
  step_block(block);

  std::uint64_t key = 0;
  for (auto _ : state) {
    cam::BlockRequest req;
    req.op = cam::OpKind::kSearch;
    req.key = ++key % 24;
    req.tag.seq = key;
    block.issue(std::move(req));
    step_block(block);
    benchmark::DoNotOptimize(block.response());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockSearchCycle)->Arg(32)->Arg(128)->Arg(512);

void BM_UnitSearchCycle(benchmark::State& state) {
  cam::UnitConfig cfg;
  cfg.block.cell.data_width = 32;
  cfg.block.block_size = 128;
  cfg.block.bus_width = 512;
  cfg.unit_size = static_cast<unsigned>(state.range(0));
  cfg.bus_width = 512;
  cam::CamUnit unit(cfg);

  std::uint64_t seq = 0;
  for (auto _ : state) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.keys = {seq % 64};
    req.seq = ++seq;
    unit.issue(std::move(req));
    unit.eval();
    unit.commit();
    benchmark::DoNotOptimize(unit.response());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnitSearchCycle)->Arg(4)->Arg(16);

void BM_UnitUpdateCycle(benchmark::State& state) {
  cam::UnitConfig cfg;
  cfg.block.cell.data_width = 32;
  cfg.block.block_size = 128;
  cfg.block.bus_width = 512;
  cfg.unit_size = 16;
  cfg.bus_width = 512;
  cam::CamUnit unit(cfg);

  std::uint64_t seq = 0;
  for (auto _ : state) {
    if (unit.stored_per_group() + 16 > unit.capacity_per_group()) {
      state.PauseTiming();
      cam::UnitRequest reset;
      reset.op = cam::OpKind::kReset;
      unit.issue(std::move(reset));
      for (int i = 0; i < 8; ++i) {
        unit.eval();
        unit.commit();
      }
      state.ResumeTiming();
    }
    cam::UnitRequest req;
    req.op = cam::OpKind::kUpdate;
    for (cam::Word w = 0; w < 16; ++w) req.words.push_back(w);
    req.seq = ++seq;
    unit.issue(std::move(req));
    unit.eval();
    unit.commit();
    benchmark::DoNotOptimize(unit.update_ack());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnitUpdateCycle);

}  // namespace
