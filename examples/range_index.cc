// RMCAM database range index.
//
// The paper's third cell type matches keys against power-of-two aligned
// ranges (Section III-A, Table II) - the building block for database index
// acceleration and firewall port ranges. This example indexes price
// "buckets" of a product table and classifies lookups in one search,
// also demonstrating the documented alignment limitation.
#include <cstdio>
#include <string>
#include <vector>

#include "src/cam/block.h"
#include "src/cam/mask.h"
#include "src/common/error.h"

using namespace dspcam;

namespace {

struct Bucket {
  std::string label;
  std::uint32_t base;
  unsigned log2_span;  // bucket covers [base, base + 2^log2_span)
};

void clock_cycle(cam::CamBlock& b) {
  b.eval();
  b.commit();
}

}  // namespace

int main() {
  const std::vector<Bucket> buckets = {
      {"budget   [0,64)", 0, 6},
      {"mid      [64,128)", 64, 6},
      {"premium  [128,256)", 128, 7},
      {"luxury   [256,1024)", 256, 8},   // [256,512)
      {"luxury+  [512,1024)", 512, 9},
  };

  cam::BlockConfig cfg;
  cfg.cell.kind = cam::CamKind::kRange;
  cfg.cell.data_width = 16;
  cfg.block_size = 32;
  cfg.bus_width = 512;
  cam::CamBlock rmcam(cfg);

  cam::BlockRequest install;
  install.op = cam::OpKind::kUpdate;
  for (const auto& b : buckets) {
    install.words.push_back(b.base);
    install.masks.push_back(cam::rmcam_mask(16, b.base, b.log2_span));
  }
  rmcam.issue(std::move(install));
  clock_cycle(rmcam);
  std::printf("Indexed %u price buckets\n\n", rmcam.fill());

  for (std::uint32_t price : {5u, 64u, 127u, 200u, 700u, 2000u}) {
    cam::BlockRequest req;
    req.op = cam::OpKind::kSearch;
    req.key = price;
    rmcam.issue(std::move(req));
    while (!rmcam.response().has_value()) clock_cycle(rmcam);
    const auto& resp = *rmcam.response();
    std::printf("price %4u -> %s\n", price,
                resp.hit ? buckets[resp.first_match].label.c_str() : "(no bucket)");
    clock_cycle(rmcam);
  }

  // The documented limitation: ranges must be power-of-two sized and
  // aligned, because the mask is bit-granular (paper Section III-A).
  std::printf("\nAlignment limitation (paper Section III-A):\n");
  try {
    cam::rmcam_mask(16, 100, 6);  // base 100 not aligned to 64
  } catch (const ConfigError& e) {
    std::printf("  rmcam_mask(base=100, span=2^6) -> ConfigError: %s\n", e.what());
  }
  std::printf("  Arbitrary ranges are covered by splitting into aligned\n"
              "  power-of-two pieces, each stored as one RMCAM entry.\n");
  return 0;
}
