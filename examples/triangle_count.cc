// The paper's case study end to end (Fig. 5 / Fig. 6): triangle counting
// with the CAM-based accelerator versus the merge-based baseline.
//
// Generates a synthetic social graph, verifies the count against two CPU
// reference algorithms, runs both accelerator cycle models, and (for a
// small slice) drives the real cycle-accurate CAM unit through the same
// flow to show the datapath agrees.
#include <cstdio>

#include "src/common/random.h"
#include "src/graph/builder.h"
#include "src/graph/generators.h"
#include "src/graph/triangle.h"
#include "src/tc/cam_accel.h"
#include "src/tc/merge_accel.h"
#include "src/tc/validate.h"

using namespace dspcam;

int main() {
  // A small power-law social network (the structure that favours CAM).
  Rng rng(7);
  const auto g = graph::barabasi_albert(3000, 12, rng);
  std::printf("Graph: %u vertices, %llu undirected edges, max degree %u\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges() / 2),
              g.max_degree());

  // CPU references (Fig. 5's algorithm, two independent implementations).
  const auto oriented = graph::orient_by_degree(g);
  const auto t_merge = graph::count_triangles_merge(oriented);
  const auto t_hash = graph::count_triangles_hash(oriented);
  std::printf("CPU reference counts: merge=%llu hash=%llu %s\n",
              static_cast<unsigned long long>(t_merge),
              static_cast<unsigned long long>(t_hash),
              t_merge == t_hash ? "(agree)" : "(DISAGREE!)");

  // Accelerator cycle models (the paper's Table IX setup).
  const tc::MergeTcAccelerator baseline;
  const tc::CamTcAccelerator cam;
  const auto rb = baseline.run(g);
  const auto rc = cam.run(g);
  std::printf("\nBaseline (merge): %llu triangles, %.3f ms (%.1f cycles/edge)\n",
              static_cast<unsigned long long>(rb.triangles), rb.milliseconds(),
              rb.cycles_per_edge());
  std::printf("Ours (CAM):       %llu triangles, %.3f ms (%.1f cycles/edge)\n",
              static_cast<unsigned long long>(rc.triangles), rc.milliseconds(),
              rc.cycles_per_edge());
  std::printf("Speedup: %.2fx\n", rb.milliseconds() / rc.milliseconds());

  // Tie-back to the cycle-accurate CAM: run a small subgraph through the
  // real CamUnit datapath.
  Rng rng2(8);
  const auto small = graph::barabasi_albert(120, 6, rng2);
  const auto expect =
      graph::count_triangles_merge(graph::orient_by_degree(small));
  tc::CamTcAccelerator::Config small_cfg;
  small_cfg.cam_entries = 256;
  small_cfg.block_size = 32;
  const auto got = tc::count_triangles_with_unit(small, small_cfg);
  std::printf(
      "\nCycle-accurate CAM datapath on a 120-vertex subgraph: %llu triangles "
      "(reference %llu) %s\n",
      static_cast<unsigned long long>(got), static_cast<unsigned long long>(expect),
      got == expect ? "- exact match" : "- MISMATCH");
  return 0;
}
