// Quickstart: build a binary CAM unit, store values, search them.
//
// Shows the three things every user of the library does:
//   1. describe the architecture with a UnitConfig (Table III parameters),
//   2. drive the cycle-accurate unit one clock at a time
//      (issue -> eval/commit -> poll response),
//   3. read the calibrated resource/timing model for the same config.
#include <cstdio>

#include "src/cam/unit.h"
#include "src/model/resources.h"
#include "src/model/timing.h"
#include "src/system/cam_system.h"

using namespace dspcam;

namespace {

void clock_cycle(cam::CamUnit& unit) {
  unit.eval();
  unit.commit();
}

}  // namespace

int main() {
  // 1. Architecture: 512 entries of 32-bit binary CAM, 4 blocks of 128
  //    cells, 512-bit bus - a small instance of the paper's design.
  cam::UnitConfig cfg;
  cfg.block.cell.kind = cam::CamKind::kBinary;
  cfg.block.cell.data_width = 32;
  cfg.block.block_size = 128;
  cfg.block.bus_width = 512;
  cfg.unit_size = 4;
  cfg.bus_width = 512;
  cfg = cam::UnitConfig::with_auto_timing(cfg);

  cam::CamUnit unit(cfg);
  std::printf("Built CAM unit: %s\n", cfg.to_string().c_str());
  // Which simulation path answers searches: the eval mode picks the engine
  // (per-cell DSP reference vs packed-array fast path) and, for kFast, the
  // registry picks the geometry-specialized match kernel (match_kernel.h).
  // The fusion width is what the queue-fronted CamSystem wrapper would run
  // at for this config: up to that many queued search keys share one sweep
  // of the stored arrays (DESIGN.md §11; override with
  // DSPCAM_FUSION_MAX_KEYS, where 1 disables fusion). Confirm all three
  // before benchmarking anything.
  system::CamSystem::Config sys_cfg;
  sys_cfg.unit = cfg;
  std::printf("Eval mode: %s, match kernel: %s, fusion width: B=%zu\n",
              cam::to_string(cfg.block.eval_mode).c_str(),
              unit.match_kernel_name().c_str(),
              system::CamSystem(sys_cfg).fusion_width());

  // 2a. Store a few values. One bus beat carries up to 16 x 32-bit words;
  //     the update lands 6 cycles later (Table VIII).
  cam::UnitRequest update;
  update.op = cam::OpKind::kUpdate;
  update.words = {0xCAFE, 0xBEEF, 0xF00D, 0x1234};
  update.seq = 1;
  unit.issue(std::move(update));
  while (!unit.update_ack().has_value()) clock_cycle(unit);
  std::printf("Stored %u words (update latency %u cycles)\n",
              unit.update_ack()->words_written, cam::CamUnit::update_latency());

  // 2b. Search. The response carries hit + global address; latency is 7
  //     cycles at this size.
  for (cam::Word key : {0xBEEFULL, 0xDEADULL}) {
    cam::UnitRequest search;
    search.op = cam::OpKind::kSearch;
    search.keys = {key};
    search.seq = 100 + key;
    unit.issue(std::move(search));
    unsigned cycles = 0;
    while (!unit.response().has_value() || unit.response()->seq != 100 + key) {
      clock_cycle(unit);
      ++cycles;
    }
    const auto& res = unit.response()->results[0];
    std::printf("search 0x%llX -> %s", static_cast<unsigned long long>(key),
                res.hit ? "HIT" : "miss");
    if (res.hit) std::printf(" @ address %u", res.global_address);
    std::printf(" (%u cycles)\n", cycles);
  }

  // 3. What would this cost on the U250?
  const auto res = model::unit_resources(cfg);
  std::printf("Model: %llu DSPs, %llu LUTs, %llu BRAMs @ %.0f MHz\n",
              static_cast<unsigned long long>(res.dsps),
              static_cast<unsigned long long>(res.luts),
              static_cast<unsigned long long>(res.brams),
              model::unit_frequency_mhz(cfg));
  return 0;
}
