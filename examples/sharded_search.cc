// Scaling past one CAM unit: a ShardedCamEngine spreads the key space over
// S independent backends behind the ordinary CamBackend interface, and the
// async CamDriver keeps every shard's pipeline busy with ticketed batches.
//
// The same code path drives S = 1 (a plain unit) and S = 4 (four units in
// lockstep); the only observable differences are capacity, aggregate lanes,
// and cycles per key.
#include <cstdio>
#include <vector>

#include "src/common/random.h"
#include "src/system/driver.h"
#include "src/system/sharded_engine.h"

using namespace dspcam;

namespace {

system::CamSystem::Config unit_config() {
  system::CamSystem::Config cfg;
  cfg.unit.block.cell.data_width = 32;
  cfg.unit.block.block_size = 32;
  cfg.unit.unit_size = 4;  // 128 entries per shard
  cfg.unit.block.bus_width = 512;
  cfg.unit.bus_width = 512;
  return cfg;
}

void run(unsigned shards) {
  system::ShardedCamEngine::Config ecfg;
  ecfg.shards = shards;
  ecfg.partition = system::ShardedCamEngine::Partition::kHash;
  system::ShardedCamEngine engine(ecfg, unit_config());
  system::CamDriver drv(engine);

  std::printf("S = %u: capacity %u entries, %u search lanes per beat\n",
              shards, engine.capacity(), engine.max_keys_per_beat());

  // Fill half the table, then stream 2048 lookups through the async path:
  // submit_async() hands back a ticket immediately, drain() runs the clock
  // until every ticket completes.
  Rng rng(7);
  std::vector<cam::Word> words(engine.capacity() / 2);
  for (auto& w : words) w = rng.next_bits(16);
  drv.store(words);

  const auto start = drv.cycles();
  constexpr unsigned kKeys = 2048;
  for (unsigned i = 0; i < kKeys; ++i) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.keys = {words[i % words.size()]};
    drv.submit_async(std::move(req));
  }
  drv.drain();

  unsigned hits = 0;
  while (auto c = drv.try_pop_completion()) {
    for (const auto& r : c->results) hits += r.hit;
  }
  const auto cycles = drv.cycles() - start;
  std::printf("  %u/%u hits in %llu cycles -> %.2f keys/cycle\n\n", hits,
              kKeys, static_cast<unsigned long long>(cycles),
              static_cast<double>(kKeys) / static_cast<double>(cycles));
}

}  // namespace

int main() {
  std::printf("Sharded CAM search: same driver code, one unit vs four\n\n");
  run(1);
  run(4);
  std::printf(
      "Hash partitioning routes each key to one shard, so the four units\n"
      "answer disjoint slices of the stream concurrently - the aggregate\n"
      "rate approaches S keys per cycle as the stream load-balances.\n");
  return 0;
}
