// Streaming duplicate detection with the CamDriver facade.
//
// A classic data-intensive CAM workload (the "networking / database"
// motivation of the paper's introduction): a stream of flow signatures
// arrives; each is searched in the CAM and inserted if new. Frequent
// updates interleaved with searches is exactly the pattern LUTRAM/BRAM CAMs
// handle poorly (38-129 cycle updates) and the DSP CAM handles at 6/7
// cycles fully pipelined.
#include <cstdio>

#include "src/common/random.h"
#include "src/system/driver.h"

using namespace dspcam;

int main() {
  system::CamSystem::Config cfg;
  cfg.unit.block.cell.data_width = 32;
  cfg.unit.block.block_size = 128;
  cfg.unit.block.bus_width = 512;
  cfg.unit.unit_size = 8;  // 1024 flows
  cfg.unit.bus_width = 512;
  system::CamDriver cam(cfg);

  // A synthetic flow stream: 4000 packets over ~600 distinct flows with a
  // skewed popularity distribution (a few heavy hitters).
  Rng rng(99);
  std::vector<cam::Word> stream;
  for (int i = 0; i < 4000; ++i) {
    const double r = rng.next_double();
    const auto flow = static_cast<cam::Word>(r * r * 600);
    stream.push_back(0x10000 + flow);
  }

  std::uint64_t duplicates = 0;
  std::uint64_t new_flows = 0;
  std::uint64_t dropped = 0;
  const auto start = cam.cycles();
  for (const cam::Word sig : stream) {
    if (cam.search(sig).hit) {
      ++duplicates;
    } else if (cam.store(std::span<const cam::Word>(&sig, 1)) == 1) {
      ++new_flows;
    } else {
      ++dropped;  // table full
    }
  }
  const auto cycles = cam.cycles() - start;

  std::printf("Processed %zu packets: %llu duplicates, %llu new flows, %llu dropped\n",
              stream.size(), static_cast<unsigned long long>(duplicates),
              static_cast<unsigned long long>(new_flows),
              static_cast<unsigned long long>(dropped));
  std::printf("Simulated cycles: %llu (%.1f cycles/packet at this naive\n"
              "search-then-insert serialisation; batch APIs pipeline to ~1)\n",
              static_cast<unsigned long long>(cycles),
              static_cast<double>(cycles) / static_cast<double>(stream.size()));
  std::printf("At 300 MHz: %.3f ms for the whole stream\n",
              static_cast<double>(cycles) / 300e3);

  // Sanity: every flow id stored exactly once.
  std::printf("Table occupancy: %u entries (distinct flows seen: %llu)\n",
              cam.system().unit().stored_per_group(),
              static_cast<unsigned long long>(new_flows));
  return 0;
}
