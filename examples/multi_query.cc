// Runtime group reconfiguration and multi-query search (paper Section
// III-C): the same CAM unit serves one large data set with one query
// stream, then is reconfigured by the "user kernel" into 8 groups serving
// 8 concurrent query streams over a smaller replicated data set.
#include <cstdio>

#include "src/cam/unit.h"

using namespace dspcam;

namespace {

void clock_cycle(cam::CamUnit& unit) {
  unit.eval();
  unit.commit();
}

void load(cam::CamUnit& unit, std::initializer_list<cam::Word> words,
          std::uint64_t seq) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kUpdate;
  req.words = words;
  req.seq = seq;
  unit.issue(std::move(req));
  for (int i = 0; i < 10; ++i) clock_cycle(unit);
}

// Group reconfiguration requires an idle unit: run the clock until every
// pipeline register has drained (a handful of cycles suffices).
void drain(cam::CamUnit& unit) {
  while (!unit.idle()) clock_cycle(unit);
}

void show_search(cam::CamUnit& unit, std::vector<cam::Word> keys, std::uint64_t seq) {
  cam::UnitRequest req;
  req.op = cam::OpKind::kSearch;
  req.keys = std::move(keys);
  req.seq = seq;
  unit.issue(std::move(req));
  while (!unit.response().has_value() || unit.response()->seq != seq) {
    clock_cycle(unit);
  }
  std::printf("  beat #%llu:", static_cast<unsigned long long>(seq));
  for (const auto& r : unit.response()->results) {
    std::printf("  key %llu -> %s", static_cast<unsigned long long>(r.key),
                r.hit ? "HIT" : "miss");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  cam::UnitConfig cfg;
  cfg.block.cell.data_width = 32;
  cfg.block.block_size = 128;
  cfg.block.bus_width = 512;
  cfg.unit_size = 8;  // 1024 entries
  cfg.bus_width = 512;
  cam::CamUnit unit(cfg);

  std::printf("Phase 1: M = 1 group -> one query per cycle over 1024 entries\n");
  load(unit, {10, 20, 30, 40, 50}, 1);
  show_search(unit, {30}, 2);
  show_search(unit, {31}, 3);

  std::printf(
      "\nPhase 2: user kernel reconfigures to M = 8 groups (contents clear,\n"
      "each group now a 128-entry copy) -> 8 queries per cycle\n");
  drain(unit);
  unit.configure_groups(8);
  load(unit, {10, 20, 30, 40, 50}, 4);
  show_search(unit, {10, 20, 30, 40, 50, 60, 70, 10}, 5);

  std::printf("\nPhase 3: back to M = 2 for deeper per-group capacity\n");
  drain(unit);
  unit.configure_groups(2);
  load(unit, {111, 222}, 6);
  show_search(unit, {111, 333}, 7);

  std::printf(
      "\nThroughput scales with M while the data set is replicated M times -\n"
      "exactly the flexibility the triangle-counting accelerator exploits\n"
      "(groups chosen per adjacency-list length).\n");
  return 0;
}
