// Observability end to end: a sharded search workload with the telemetry
// layer attached, producing artifacts a human can open.
//
//   traced_search.trace.json    Chrome trace-event spans + counter tracks
//                               (open in https://ui.perfetto.dev or
//                               chrome://tracing): driver ticket lifetimes,
//                               backpressure waits, engine beats, per-shard
//                               sub-operations, queue-depth counters.
//   traced_search.metrics.json  Final MetricRegistry snapshot: driver
//                               latency percentiles, per-shard queue depths
//                               and credits, fault counters, health states.
//   traced_search.snapshots.jsonl  Periodic in-flight snapshots (one JSON
//                               object per line) from the SnapshotWriter -
//                               this is the file camtop tails.
//   traced_search.blackbox.json FlightRecorder black-box dump (scenario
//                               runs; validate with trace_lint --blackbox).
//
// A low-rate fault campaign with a scrubber runs alongside the traffic so
// the "fault.*" counters carry real events, and a HealthMonitor with the
// default rule pack watches the whole stack. Optional argv[1] sets the
// output basename (default "traced_search"); optional argv[2] picks a
// scenario:
//
//   (none)       Clean streaming run.
//   quarantine   Mid-run shard quarantine -> explicit black-box dump ->
//                rebuild from the scrubber's golden shadow -> clean finish.
//                Exercises health trip/clear and quarantine/rebuild events.
//   stall        Quarantines every shard under a tiny stall budget so the
//                watchdog trips: the SimError is caught and the auto-dumped
//                black box is the artifact. Exits 0 when the dump exists.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/error.h"
#include "src/common/random.h"
#include "src/fault/injector.h"
#include "src/fault/scrubber.h"
#include "src/system/driver.h"
#include "src/system/sharded_engine.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"

using namespace dspcam;

namespace {

system::CamSystem::Config unit_config() {
  system::CamSystem::Config cfg;
  cfg.unit.block.cell.data_width = 32;
  cfg.unit.block.block_size = 32;
  cfg.unit.unit_size = 4;  // 128 entries per shard
  cfg.unit.block.bus_width = 512;
  cfg.unit.bus_width = 512;
  cfg.unit.block.parity = true;  // give the fault campaign a detection path
  return cfg;
}

/// Stall-drill backend: accepts every request and never completes one, so
/// an attached driver's watchdog must trip. (The sharded engine itself
/// cannot produce this - it settles traffic to quarantined shards as
/// shard_failed results by design - so the drill brings its own wedge.)
class WedgedBackend : public system::CamBackend {
 public:
  unsigned data_width() const override { return 32; }
  cam::CamKind kind() const override { return cam::CamKind::kBinary; }
  unsigned capacity() const override { return 16; }
  unsigned words_per_beat() const override { return 1; }
  unsigned max_keys_per_beat() const override { return 1; }
  void configure_groups(unsigned m) override {
    if (m != 1) throw ConfigError("WedgedBackend: no groups");
  }
  bool try_submit(cam::UnitRequest) override {
    ++swallowed_;
    return true;
  }
  std::optional<cam::UnitResponse> try_pop_response() override {
    return std::nullopt;
  }
  std::optional<cam::UnitUpdateAck> try_pop_ack() override {
    return std::nullopt;
  }
  bool request_full() const override { return false; }
  std::size_t pending_requests() const override { return swallowed_; }
  void step() override { ++stats_.cycles; }
  bool idle() const override { return swallowed_ == 0; }
  Stats stats() const override { return stats_; }
  model::ResourceUsage resources() const override { return {}; }
  std::string debug_dump() const override {
    return "wedged{swallowed=" + std::to_string(swallowed_) + "}";
  }

 private:
  std::size_t swallowed_ = 0;
  Stats stats_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "traced_search";
  const std::string scenario = argc > 2 ? argv[2] : "";
  if (!scenario.empty() && scenario != "quarantine" && scenario != "stall") {
    std::fprintf(stderr, "usage: traced_search [BASENAME [quarantine|stall]]\n");
    return 2;
  }

  // Four hash-partitioned shards behind the async driver.
  system::ShardedCamEngine::Config ecfg;
  ecfg.shards = 4;
  ecfg.partition = system::ShardedCamEngine::Partition::kHash;
  system::ShardedCamEngine engine(ecfg, unit_config());
  system::CamDriver drv(engine);
  if (scenario == "stall") drv.set_stall_budget(1024);

  // Telemetry: every ticket feeds the latency histograms; 1-in-4 tickets
  // additionally record their span waterfall.
  telemetry::MetricRegistry registry;
  telemetry::SpanTracer::Config tcfg;
  tcfg.sample_every = 4;
  tcfg.capacity = 16384;   // hold the whole run; no ring overwrites
  tcfg.max_open = 4096;    // cover the full pipelining depth
  telemetry::SpanTracer tracer(tcfg);
  drv.attach_telemetry(&registry, &tracer, /*snapshot_every=*/64);
  telemetry::SnapshotWriter snapshots(registry, base + ".snapshots.jsonl",
                                      /*every_cycles=*/256);

  // Health plane: the default rule pack sized to this driver's stall
  // budget, plus a black box fed by every layer and auto-dumped on a
  // watchdog trip.
  telemetry::HealthMonitor health(registry);
  telemetry::HealthMonitor::DefaultRuleOptions hopts;
  hopts.stall_budget = drv.stall_budget();
  health.add_default_rules(hopts);
  telemetry::FlightRecorder recorder;
  drv.attach_health(&health);
  drv.attach_flight_recorder(&recorder, base + ".blackbox.json");

  // Low-rate fault campaign stepping on the driver's cycle hook, with a
  // background scrubber repairing from a golden shadow.
  fault::FaultCampaign campaign;
  campaign.seed = 42;
  campaign.rate_per_cycle = 0.01;
  fault::FaultInjector injector(*engine.fault_target(), campaign);
  fault::Scrubber scrubber(*engine.fault_target(), {/*entries_per_cycle=*/4});
  injector.set_flight_recorder(&recorder);
  scrubber.set_flight_recorder(&recorder);
  drv.set_cycle_hook([&] {
    injector.step();
    scrubber.step(/*idle=*/true);
    injector.stats().record_telemetry(registry, "fault.injector");
    scrubber.stats().record_telemetry(registry, "fault.scrubber");
    snapshots.maybe_write(drv.cycles());
  });

  // Fill half the table, capture the scrubber's golden copy, then stream
  // 4096 single-key lookups through the async path.
  Rng rng(7);
  std::vector<cam::Word> words(engine.capacity() / 2);
  for (auto& w : words) w = rng.next_bits(16);
  drv.store(words);
  scrubber.capture();

  constexpr unsigned kKeys = 4096;
  for (unsigned i = 0; i < kKeys; ++i) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.keys = {words[i % words.size()]};
    drv.submit_async(std::move(req));
    // Poll as we go: the engine accepts one beat per cycle anyway, and a
    // real host overlaps submission with completion. This also keeps the
    // tracer's open-span table near the pipeline depth.
    drv.poll();

    if (scenario == "quarantine" && i == kKeys / 2) {
      // Fault drill: pull shard 1 out of service mid-run, snapshot the
      // black box while the health rule is tripped, then rebuild from the
      // scrubber's golden shadow and finish the stream cleanly.
      drv.drain();  // settle in-flight traffic so the quarantine is crisp
      engine.quarantine_shard(1);
      drv.publish_telemetry();  // health sees quarantined_shards > 0
      drv.dump_blackbox("forced quarantine drill (shard 1)");
      engine.rebuild_shard(1, scrubber);
      drv.publish_telemetry();  // ... and sees it clear again
    }
  }

  if (scenario == "stall") {
    // Finish the engine run cleanly, then hand the shared telemetry plane
    // to a driver over a backend that swallows work: the stall-headroom
    // health rule collapses, the watchdog trips within the tiny budget,
    // and throw_wedged auto-writes the black box before the SimError
    // reaches us.
    drv.drain();
    WedgedBackend wedged;
    system::CamDriver wdrv(wedged);
    wdrv.set_stall_budget(1024);
    wdrv.attach_telemetry(&registry, &tracer, /*snapshot_every=*/64);
    wdrv.attach_health(&health);
    wdrv.attach_flight_recorder(&recorder, base + ".blackbox.json");
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.keys = {words[0]};
    wdrv.submit_async(std::move(req));
    try {
      wdrv.drain();
      std::fprintf(stderr, "stall scenario: watchdog never tripped\n");
      return 1;
    } catch (const SimError& e) {
      std::printf("stall scenario: watchdog tripped as intended:\n  %s\n",
                  e.what());
      std::printf("black box: %s.blackbox.json (%llu events)\n", base.c_str(),
                  static_cast<unsigned long long>(recorder.recorded()));
      return 0;
    }
  }

  drv.drain();

  unsigned hits = 0;
  while (auto c = drv.try_pop_completion()) {
    for (const auto& r : c->results) hits += r.hit;
  }

  // Final publication + artifacts.
  drv.publish_telemetry();
  injector.stats().record_telemetry(registry, "fault.injector");
  scrubber.stats().record_telemetry(registry, "fault.scrubber");
  registry.write_json(base + ".metrics.json");
  tracer.write_chrome_json(base + ".trace.json");
  if (scenario.empty()) {
    // Clean runs still ship a black box (reason says so) so every CI leg
    // has one to lint.
    drv.dump_blackbox("end of clean run");
  }

  std::printf("traced search: %u/%u hits over %llu cycles\n", hits, kKeys,
              static_cast<unsigned long long>(drv.cycles()));
  std::printf("  spans: %llu finished, %llu dropped, %llu orphaned\n",
              static_cast<unsigned long long>(tracer.finished()),
              static_cast<unsigned long long>(tracer.dropped()),
              static_cast<unsigned long long>(tracer.orphaned()));
  std::printf("  counters: %llu samples on counter tracks\n",
              static_cast<unsigned long long>(tracer.counters_recorded()));
  std::printf("  faults: %s / %s\n", injector.stats().summary().c_str(),
              scrubber.stats().summary().c_str());
  std::printf("  health: %llu rules, %llu tripped, %llu black-box events\n",
              static_cast<unsigned long long>(health.rule_count()),
              static_cast<unsigned long long>(health.tripped_count()),
              static_cast<unsigned long long>(recorder.recorded()));
  std::printf("\n%s\n", registry.pretty().c_str());
  std::printf("artifacts: %s.trace.json (open in ui.perfetto.dev), "
              "%s.metrics.json, %s.snapshots.jsonl, %s.blackbox.json\n",
              base.c_str(), base.c_str(), base.c_str(), base.c_str());
  return 0;
}
