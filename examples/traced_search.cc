// Observability end to end: a sharded search workload with the telemetry
// layer attached, producing artifacts a human can open.
//
//   traced_search.trace.json    Chrome trace-event spans of sampled tickets
//                               (open in https://ui.perfetto.dev or
//                               chrome://tracing): driver ticket lifetimes,
//                               backpressure waits, engine beats, per-shard
//                               sub-operations.
//   traced_search.metrics.json  Final MetricRegistry snapshot: driver
//                               latency percentiles, per-shard queue depths
//                               and credits, fault counters.
//   traced_search.snapshots.jsonl  Periodic in-flight snapshots (one JSON
//                               object per line) from the SnapshotWriter.
//
// A low-rate fault campaign with a scrubber runs alongside the traffic so
// the "fault.*" counters carry real events. Optional argv[1] sets the
// output basename (default "traced_search"), so CI can redirect artifacts.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/fault/injector.h"
#include "src/fault/scrubber.h"
#include "src/system/driver.h"
#include "src/system/sharded_engine.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"

using namespace dspcam;

namespace {

system::CamSystem::Config unit_config() {
  system::CamSystem::Config cfg;
  cfg.unit.block.cell.data_width = 32;
  cfg.unit.block.block_size = 32;
  cfg.unit.unit_size = 4;  // 128 entries per shard
  cfg.unit.block.bus_width = 512;
  cfg.unit.bus_width = 512;
  cfg.unit.block.parity = true;  // give the fault campaign a detection path
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "traced_search";

  // Four hash-partitioned shards behind the async driver.
  system::ShardedCamEngine::Config ecfg;
  ecfg.shards = 4;
  ecfg.partition = system::ShardedCamEngine::Partition::kHash;
  system::ShardedCamEngine engine(ecfg, unit_config());
  system::CamDriver drv(engine);

  // Telemetry: every ticket feeds the latency histograms; 1-in-4 tickets
  // additionally record their span waterfall.
  telemetry::MetricRegistry registry;
  telemetry::SpanTracer::Config tcfg;
  tcfg.sample_every = 4;
  tcfg.capacity = 16384;   // hold the whole run; no ring overwrites
  tcfg.max_open = 4096;    // cover the full pipelining depth
  telemetry::SpanTracer tracer(tcfg);
  drv.attach_telemetry(&registry, &tracer, /*snapshot_every=*/64);
  telemetry::SnapshotWriter snapshots(registry, base + ".snapshots.jsonl",
                                      /*every_cycles=*/256);

  // Low-rate fault campaign stepping on the driver's cycle hook, with a
  // background scrubber repairing from a golden shadow.
  fault::FaultCampaign campaign;
  campaign.seed = 42;
  campaign.rate_per_cycle = 0.01;
  fault::FaultInjector injector(*engine.fault_target(), campaign);
  fault::Scrubber scrubber(*engine.fault_target(), {/*entries_per_cycle=*/4});
  drv.set_cycle_hook([&] {
    injector.step();
    scrubber.step(/*idle=*/true);
    injector.stats().record_telemetry(registry, "fault.injector");
    scrubber.stats().record_telemetry(registry, "fault.scrubber");
    snapshots.maybe_write(drv.cycles());
  });

  // Fill half the table, capture the scrubber's golden copy, then stream
  // 4096 single-key lookups through the async path.
  Rng rng(7);
  std::vector<cam::Word> words(engine.capacity() / 2);
  for (auto& w : words) w = rng.next_bits(16);
  drv.store(words);
  scrubber.capture();

  constexpr unsigned kKeys = 4096;
  for (unsigned i = 0; i < kKeys; ++i) {
    cam::UnitRequest req;
    req.op = cam::OpKind::kSearch;
    req.keys = {words[i % words.size()]};
    drv.submit_async(std::move(req));
    // Poll as we go: the engine accepts one beat per cycle anyway, and a
    // real host overlaps submission with completion. This also keeps the
    // tracer's open-span table near the pipeline depth.
    drv.poll();
  }
  drv.drain();

  unsigned hits = 0;
  while (auto c = drv.try_pop_completion()) {
    for (const auto& r : c->results) hits += r.hit;
  }

  // Final publication + artifacts.
  drv.publish_telemetry();
  injector.stats().record_telemetry(registry, "fault.injector");
  scrubber.stats().record_telemetry(registry, "fault.scrubber");
  registry.write_json(base + ".metrics.json");
  tracer.write_chrome_json(base + ".trace.json");

  std::printf("traced search: %u/%u hits over %llu cycles\n", hits, kKeys,
              static_cast<unsigned long long>(drv.cycles()));
  std::printf("  spans: %llu finished, %llu dropped, %llu orphaned\n",
              static_cast<unsigned long long>(tracer.finished()),
              static_cast<unsigned long long>(tracer.dropped()),
              static_cast<unsigned long long>(tracer.orphaned()));
  std::printf("  faults: %s / %s\n", injector.stats().summary().c_str(),
              scrubber.stats().summary().c_str());
  std::printf("\n%s\n", registry.pretty().c_str());
  std::printf("artifacts: %s.trace.json (open in ui.perfetto.dev), "
              "%s.metrics.json, %s.snapshots.jsonl\n",
              base.c_str(), base.c_str(), base.c_str());
  return 0;
}
