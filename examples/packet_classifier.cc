// TCAM packet classifier: longest-prefix-style ACL matching.
//
// The classic CAM application (the paper's "IP routing or packet
// redirection"): rules are (prefix, prefix-length) pairs stored as ternary
// entries whose don't-care bits cover the host part. Rules are stored in
// priority order (most specific first) and the block's priority encoder
// returns the first - i.e. best - match in one search.
#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/lpm.h"
#include "src/cam/block.h"
#include "src/cam/mask.h"

using namespace dspcam;

namespace {

struct Rule {
  std::string name;
  std::uint32_t prefix;    // IPv4 address, host byte order
  unsigned prefix_len;     // bits that must match
};

std::string ip_to_string(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", ip >> 24, (ip >> 16) & 255,
                (ip >> 8) & 255, ip & 255);
  return buf;
}

std::uint32_t ip(unsigned a, unsigned b, unsigned c, unsigned d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

void clock_cycle(cam::CamBlock& b) {
  b.eval();
  b.commit();
}

}  // namespace

int main() {
  // Rule table, most specific first (the priority encoder picks the lowest
  // matching cell, so storage order IS priority order).
  const std::vector<Rule> rules = {
      {"mgmt-host   10.0.0.1/32", ip(10, 0, 0, 1), 32},
      {"mgmt-net    10.0.0.0/24", ip(10, 0, 0, 0), 24},
      {"corp-net    10.0.0.0/8 ", ip(10, 0, 0, 0), 8},
      {"lab-net     192.168.7.0/24", ip(192, 168, 7, 0), 24},
      {"default     0.0.0.0/0  ", 0, 0},
  };

  cam::BlockConfig cfg;
  cfg.cell.kind = cam::CamKind::kTernary;
  cfg.cell.data_width = 32;
  cfg.block_size = 32;
  cfg.bus_width = 512;
  cfg.encoding = cam::EncodingScheme::kPriorityIndex;
  cam::CamBlock tcam(cfg);

  // Install the rules: one update beat carries all five (value, mask) pairs.
  cam::BlockRequest install;
  install.op = cam::OpKind::kUpdate;
  for (const auto& r : rules) {
    install.words.push_back(r.prefix);
    // Don't-care over the host bits: low (32 - prefix_len) bits.
    install.masks.push_back(cam::tcam_mask(32, low_bits(32 - r.prefix_len)));
  }
  tcam.issue(std::move(install));
  clock_cycle(tcam);
  std::printf("Installed %u ACL rules in one cycle (1-cycle TCAM update)\n\n",
              tcam.fill());

  const std::uint32_t packets[] = {
      ip(10, 0, 0, 1),      // exact host rule
      ip(10, 0, 0, 77),     // /24
      ip(10, 200, 1, 2),    // /8
      ip(192, 168, 7, 42),  // lab
      ip(8, 8, 8, 8),       // default
  };
  for (std::uint32_t dst : packets) {
    cam::BlockRequest req;
    req.op = cam::OpKind::kSearch;
    req.key = dst;
    tcam.issue(std::move(req));
    while (!tcam.response().has_value()) clock_cycle(tcam);
    const auto& resp = *tcam.response();
    std::printf("dst %-15s -> %s\n", ip_to_string(dst).c_str(),
                resp.hit ? rules[resp.first_match].name.c_str() : "DROP (no rule)");
    clock_cycle(tcam);  // let the response slot clear
  }

  // ---- Part 2: a full longest-prefix-match routing table (apps::LpmTable)
  // with live route insertion and withdrawal - slots are partitioned by
  // prefix length so the CAM's priority encoder performs LPM directly.
  std::printf("\nLPM routing table (insert/withdraw at runtime):\n");
  apps::LpmTable rib;
  rib.add_route(0, 0, 1);                      // default via hop 1
  rib.add_route(ip(10, 0, 0, 0), 8, 2);        // corp via hop 2
  rib.add_route(ip(10, 42, 0, 0), 16, 3);      // branch via hop 3
  auto show = [&](std::uint32_t dst) {
    const auto hop = rib.lookup(dst);
    std::printf("  %-15s -> next hop %s\n", ip_to_string(dst).c_str(),
                hop ? std::to_string(*hop).c_str() : "none");
  };
  show(ip(10, 42, 1, 1));   // /16 wins
  show(ip(10, 7, 7, 7));    // /8
  show(ip(8, 8, 8, 8));     // default
  std::printf("  (withdrawing 10.42.0.0/16)\n");
  rib.remove_route(ip(10, 42, 0, 0), 16);
  show(ip(10, 42, 1, 1));   // falls back to /8
  return 0;
}
