// RTL generation: the paper's template-based flow ("all the parameters can
// be defined before the CAM unit is generated", Section III-D).
//
// Emits the Verilog for the triangle-counting case study's CAM (2K x 32b,
// 16 blocks of 128, 512-bit bus) into ./generated_rtl/ and prints a summary
// plus the resource/timing estimate for the same configuration.
//
// Usage: generate_rtl [output_dir]
#include <algorithm>
#include <cstdio>

#include "src/codegen/verilog.h"
#include "src/model/resources.h"
#include "src/model/timing.h"

using namespace dspcam;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "generated_rtl";

  cam::UnitConfig cfg;
  cfg.block.cell.kind = cam::CamKind::kBinary;
  cfg.block.cell.data_width = 32;
  cfg.block.block_size = 128;
  cfg.block.bus_width = 512;
  cfg.unit_size = 16;
  cfg.bus_width = 512;
  cfg = cam::UnitConfig::with_auto_timing(cfg);

  codegen::VerilogOptions opt;
  opt.top_name = "dsp_cam_unit_2k";
  opt.header_comment = "Configuration: triangle-counting case study (Section V-B).";

  const auto files = codegen::generate_unit_verilog(cfg, opt);
  const unsigned written = codegen::write_files(files, out_dir);

  std::printf("Generated %u RTL files for %s into %s/\n", written,
              cfg.to_string().c_str(), out_dir.c_str());
  for (const auto& [name, contents] : files) {
    std::printf("  %-24s %5zu lines\n", name.c_str(),
                static_cast<std::size_t>(
                    std::count(contents.begin(), contents.end(), '\n')));
  }

  const auto res = model::unit_resources(cfg);
  std::printf(
      "\nExpected implementation (calibrated model): %llu DSP48E2, ~%llu LUTs,\n"
      "%llu BRAM, ~%.0f MHz; update 6 cycles, search %u cycles.\n",
      static_cast<unsigned long long>(res.dsps),
      static_cast<unsigned long long>(res.luts),
      static_cast<unsigned long long>(res.brams), model::unit_frequency_mhz(cfg),
      cfg.block.output_buffer ? 8u : 7u);
  std::printf(
      "The emitted microarchitecture mirrors the cycle-accurate C++ model\n"
      "stage for stage (see src/codegen/verilog.h).\n");
  return 0;
}
