// CI artifact checker for engine checkpoint files.
//
// Validates what the recovery smoke job snapshots mid-bench:
//
//   snapshot_lint FILE [FILE...]
//
// Per file, three gates:
//  1. Every non-empty line is well-formed JSON (telemetry::jsonv) - the
//     JSONL contract every repo exporter shares.
//  2. The header names the format ("dspcam.checkpoint") and a version this
//     build reads, with the geometry fields present.
//  3. Every shard record round-trips through the real loader
//     (system::load_checkpoint), which re-verifies each snapshot's FNV-1a
//     content checksum - a flipped bit anywhere in the entry payload fails
//     the lint, not just malformed syntax.
//
// Exits non-zero on the first failing file.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "src/system/checkpoint_io.h"
#include "src/telemetry/jsonv.h"

namespace {

using dspcam::telemetry::jsonv::validate;

bool fail(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "snapshot_lint: %s: %s\n", path.c_str(), why.c_str());
  return false;
}

bool check_checkpoint(const std::string& path) {
  // Gate 1: line-by-line JSON syntax (same row-reading shape as bench_diff:
  // JSONL, one record per line, skip blanks).
  std::ifstream in(path);
  if (!in) return fail(path, "cannot open");
  std::string line;
  std::size_t lineno = 0;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++records;
    const auto r = validate(line);
    if (!r.ok) {
      return fail(path, "line " + std::to_string(lineno) +
                            ": invalid JSON at byte " +
                            std::to_string(r.error_offset) + ": " + r.error);
    }
  }
  if (records == 0) return fail(path, "no records");

  // Gates 2+3: the real loader checks header kind/version, per-shard
  // geometry fields, shard ordering, and every content checksum.
  try {
    const auto ckpt = dspcam::system::load_checkpoint(path);
    std::size_t entries = 0;
    for (const auto& snap : ckpt.shard_snaps) entries += snap.entries.size();
    std::printf("snapshot_lint: %s ok (version=%u shards=%u partition=%s "
                "entries=%zu)\n",
                path.c_str(), ckpt.version, ckpt.shards,
                dspcam::system::to_string(ckpt.partition), entries);
  } catch (const std::exception& e) {
    return fail(path, e.what());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: snapshot_lint FILE [FILE...]\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    if (!check_checkpoint(argv[i])) return 1;
  }
  return 0;
}
