// Row parsing and identity logic behind tools/bench_diff.cc, extracted so
// tests can pin the matching rules (tests/tools/bench_diff_test.cc).
//
// The central contract is the GENERIC identity: a row's key is every
// top-level scalar field that is neither a measured statistic (suffixes
// _median/_mean/_stddev/_min/_max/_samples) nor host-/derivation-dependent
// (host_cores, effective_step_threads, speedup_*, relative_rate,
// spans_finished, telemetry, sample_every). Nothing is keyed on a known
// "kind" whitelist, so a bench part introducing a new row kind (e.g.
// "fusion") is matched and diffed the day it lands - never silently
// skipped.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace dspcam::tools::benchdiff {

/// One parsed bench row: scalar fields only; nested objects/arrays (e.g.
/// the "telemetry" registry dump) are skipped during parsing.
struct Row {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  unsigned line = 0;
};

inline bool is_stat_field(const std::string& key) {
  static const char* kSuffixes[] = {"_median", "_mean",    "_stddev",
                                    "_min",    "_max",     "_samples"};
  for (const char* s : kSuffixes) {
    const std::size_t n = std::strlen(s);
    if (key.size() > n && key.compare(key.size() - n, n, s) == 0) return true;
  }
  return false;
}

inline bool is_volatile_field(const std::string& key) {
  static const char* kVolatile[] = {
      "host_cores",        "effective_step_threads", "relative_rate",
      "spans_finished",    "telemetry",              "sample_every",
  };
  for (const char* v : kVolatile) {
    if (key == v) return true;
  }
  return key.compare(0, 8, "speedup_") == 0;
}

/// Minimal JSON scanner for one bench row. Scalars land in `row`; nested
/// objects and arrays are balance-skipped. Returns false on malformed input.
class LineParser {
 public:
  LineParser(const std::string& text) : s_(text) {}

  bool parse(Row& row) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value(row, key)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
      skip_ws();
    }
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        out += e == 'n' ? '\n' : e;  // enough for bench rows
      } else {
        out += c;
      }
    }
    return false;
  }
  /// Skips a balanced {...} or [...] (strings respected).
  bool skip_nested() {
    int depth = 0;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        std::string ignored;
        if (!parse_string(ignored)) return false;
        continue;
      }
      ++pos_;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        if (--depth == 0) return true;
      }
    }
    return false;
  }
  bool parse_value(Row& row, const std::string& key) {
    const char c = s_[pos_];
    if (c == '"') {
      std::string v;
      if (!parse_string(v)) return false;
      row.strings[key] = v;
      return true;
    }
    if (c == '{' || c == '[') return skip_nested();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      row.strings[key] = "true";
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      row.strings[key] = "false";
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    const double v = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    row.numbers[key] = v;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Stable identity string: sorted non-stat, non-volatile fields. Generic by
/// construction - every scalar field participates unless excluded above -
/// so rows of unknown kinds key on (kind + all their descriptive fields).
inline std::string identity_of(const Row& row) {
  std::string id;
  for (const auto& [k, v] : row.strings) {
    if (!is_stat_field(k) && !is_volatile_field(k)) id += k + "=" + v + " ";
  }
  for (const auto& [k, v] : row.numbers) {
    if (is_stat_field(k) || is_volatile_field(k)) continue;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%.6g ", k.c_str(), v);
    id += buf;
  }
  if (!id.empty()) id.pop_back();
  return id;
}

inline bool load_rows(const std::string& path, std::vector<Row>& rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    Row row;
    row.line = lineno;
    if (!LineParser(line).parse(row)) {
      std::fprintf(stderr, "bench_diff: %s:%u: malformed JSON row\n",
                   path.c_str(), lineno);
      return false;
    }
    rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace dspcam::tools::benchdiff
