// camtop: "top" for a running (or finished) simulation.
//
// Tails the snapshots.jsonl file a CamDriver writes and repaints the latest
// snapshot as a text dashboard - driver queue/inflight/stall-headroom with
// latency percentiles, every health rule with its trip state, the per-shard
// credit/parked/quarantine table, and fault-campaign totals:
//
//   camtop FILE                 Follow mode: repaint every --interval ms
//                               until interrupted (works on a live file -
//                               half-written trailing lines are skipped).
//   camtop FILE --once          Render the latest snapshot once and exit
//                               (CI artifact mode). Exits 1 when the file
//                               holds no parseable snapshot.
//   camtop FILE --interval MS   Repaint period in follow mode (default 500).
//
// Parsing and rendering live in camtop_lib.h (tested directly).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "tools/camtop_lib.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool once = false;
  long interval_ms = 500;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms <= 0) interval_ms = 500;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "camtop: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "camtop: more than one FILE given\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: camtop FILE [--once] [--interval MS]\n");
    return 2;
  }

  std::uint64_t last_cycle = ~std::uint64_t{0};
  while (true) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "camtop: cannot open %s\n", path.c_str());
      return 1;
    }
    const auto snap = dspcam::tools::camtop::last_snapshot(text);
    if (once) {
      if (!snap) {
        std::fprintf(stderr, "camtop: %s holds no parseable snapshot\n",
                     path.c_str());
        return 1;
      }
      std::fputs(dspcam::tools::camtop::render_dashboard(*snap).c_str(),
                 stdout);
      return 0;
    }
    if (snap && snap->cycle != last_cycle) {
      last_cycle = snap->cycle;
      // Home + clear-to-end repaint: flicker-free on every VT100-ish
      // terminal without a curses dependency.
      std::fputs("\x1b[H\x1b[J", stdout);
      std::fputs(dspcam::tools::camtop::render_dashboard(*snap).c_str(),
                 stdout);
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
