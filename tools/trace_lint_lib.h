// Validation core for trace_lint (header-only so tests link it directly).
//
// Checks the artifacts the telemetry stack emits - Chrome trace-event JSON
// (spans + counter tracks), MetricRegistry snapshots, JSON-lines files, and
// FlightRecorder black-box dumps - beyond bare syntax: counter events must
// have the "ph":"C" shape Perfetto expects (name, ts, args.value) with
// monotonic timestamps per (name, tid) track, spans must not end before
// they start, and a black box must carry every section the post-mortem
// tooling reads. Built on the jsonv syntax validator plus a small
// depth-aware field scanner (no DOM): a field lookup only sees the top
// level of its object, so keys inside nested containers - "args" payloads
// especially - can never shadow or collide with the fields being checked.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/telemetry/jsonv.h"

namespace dspcam::tools::tracelint {

/// Outcome of one lint pass. `error` names the first problem found.
struct LintResult {
  bool ok = true;
  std::string error;
  std::size_t spans = 0;     ///< "ph":"X" events seen (lint_trace).
  std::size_t counters = 0;  ///< "ph":"C" events seen (lint_trace).
  std::size_t rows = 0;      ///< Objects seen (lint_jsonl) / events (blackbox).
};

namespace detail {

inline std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
  return i;
}

/// Span of one balanced JSON value starting at `i` (string, container, or
/// scalar). Assumes syntactically valid input (callers run jsonv first).
inline std::size_t value_end(std::string_view s, std::size_t i) {
  i = skip_ws(s, i);
  if (i >= s.size()) return i;
  if (s[i] == '"') {
    ++i;
    while (i < s.size()) {
      if (s[i] == '\\') {
        i += 2;
      } else if (s[i] == '"') {
        return i + 1;
      } else {
        ++i;
      }
    }
    return i;
  }
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    bool in_string = false;
    while (i < s.size()) {
      const char c = s[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (--depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }
  // Scalar: runs to the next structural character.
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r') {
    ++i;
  }
  return i;
}

/// Raw value of `key` at the TOP level of the object `obj` (which must start
/// with '{'); nullopt when absent. Nested containers are skipped wholesale,
/// so an "args" payload can never satisfy (or corrupt) a field lookup.
inline std::optional<std::string_view> find_field(std::string_view obj,
                                                  std::string_view key) {
  std::size_t i = skip_ws(obj, 0);
  if (i >= obj.size() || obj[i] != '{') return std::nullopt;
  ++i;
  while (true) {
    i = skip_ws(obj, i);
    if (i >= obj.size() || obj[i] == '}') return std::nullopt;
    if (obj[i] == ',') {
      ++i;
      continue;
    }
    if (obj[i] != '"') return std::nullopt;  // Malformed; jsonv caught it.
    const std::size_t key_start = i + 1;
    const std::size_t key_close = value_end(obj, i);
    const std::string_view name = obj.substr(key_start, key_close - key_start - 1);
    i = skip_ws(obj, key_close);
    if (i >= obj.size() || obj[i] != ':') return std::nullopt;
    i = skip_ws(obj, i + 1);
    const std::size_t vend = value_end(obj, i);
    if (name == key) return obj.substr(i, vend - i);
    i = vend;
  }
}

/// Items of the array `arr` (which must start with '['), one raw value each.
inline std::vector<std::string_view> array_items(std::string_view arr) {
  std::vector<std::string_view> out;
  std::size_t i = skip_ws(arr, 0);
  if (i >= arr.size() || arr[i] != '[') return out;
  ++i;
  while (true) {
    i = skip_ws(arr, i);
    if (i >= arr.size() || arr[i] == ']') return out;
    if (arr[i] == ',') {
      ++i;
      continue;
    }
    const std::size_t vend = value_end(arr, i);
    out.push_back(arr.substr(i, vend - i));
    i = vend;
  }
}

/// Unquoted content of a JSON string value (no unescaping: the emitters
/// only escape characters that never appear in the names being compared).
inline std::optional<std::string_view> as_string(std::string_view value) {
  if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
    return std::nullopt;
  }
  return value.substr(1, value.size() - 2);
}

inline std::optional<double> as_number(std::string_view value) {
  if (value.empty() || value == "null" || value.front() == '"' ||
      value.front() == '{' || value.front() == '[') {
    return std::nullopt;
  }
  const std::string buf(value);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return std::nullopt;
  return v;
}

inline LintResult fail(std::string why) {
  LintResult r;
  r.ok = false;
  r.error = std::move(why);
  return r;
}

}  // namespace detail

/// Chrome trace-event JSON: well-formed, has a "traceEvents" array with at
/// least one complete ("X") span, no span with negative duration (an end
/// that precedes its start), and every counter ("C") event carrying the
/// shape Perfetto renders - name, ts, args.value - with non-decreasing
/// timestamps per (name, tid) counter track.
inline LintResult lint_trace(std::string_view text) {
  using namespace detail;
  const auto syntax = telemetry::jsonv::validate(text);
  if (!syntax.ok) {
    return fail("invalid JSON at byte " + std::to_string(syntax.error_offset) +
                ": " + syntax.error);
  }
  if (!telemetry::jsonv::has_top_level_key(text, "traceEvents")) {
    return fail("missing top-level \"traceEvents\" key");
  }
  const auto events = find_field(text, "traceEvents");
  if (!events || events->empty() || events->front() != '[') {
    return fail("\"traceEvents\" is not an array");
  }
  LintResult r;
  // Last timestamp per (counter name, tid): Perfetto draws one counter
  // track per pair, and a track with time running backwards renders as
  // garbage (or not at all).
  std::map<std::pair<std::string, std::int64_t>, double> last_ts;
  std::size_t idx = 0;
  for (const std::string_view ev : array_items(*events)) {
    const std::string where = "traceEvents[" + std::to_string(idx++) + "]";
    const auto ph_raw = find_field(ev, "ph");
    if (!ph_raw) return fail(where + ": missing \"ph\"");
    const auto ph = as_string(*ph_raw);
    if (!ph) return fail(where + ": \"ph\" is not a string");
    if (*ph == "X") {
      ++r.spans;
      const auto name = find_field(ev, "name");
      if (!name || !as_string(*name)) {
        return fail(where + ": span missing \"name\"");
      }
      const auto ts = find_field(ev, "ts");
      if (!ts || !as_number(*ts)) return fail(where + ": span missing \"ts\"");
      const auto dur = find_field(ev, "dur");
      if (!dur || !as_number(*dur)) {
        return fail(where + ": span missing \"dur\"");
      }
      if (*as_number(*dur) < 0) {
        return fail(where + ": span \"" + std::string(*as_string(*name)) +
                    "\" has negative dur (end precedes start)");
      }
    } else if (*ph == "C") {
      ++r.counters;
      const auto name_raw = find_field(ev, "name");
      const auto name = name_raw ? as_string(*name_raw) : std::nullopt;
      if (!name) return fail(where + ": counter missing \"name\"");
      const auto ts_raw = find_field(ev, "ts");
      const auto ts = ts_raw ? as_number(*ts_raw) : std::nullopt;
      if (!ts) return fail(where + ": counter missing \"ts\"");
      const auto args = find_field(ev, "args");
      if (!args || args->empty() || args->front() != '{') {
        return fail(where + ": counter missing \"args\" object");
      }
      const auto value = find_field(*args, "value");
      if (!value || !as_number(*value)) {
        return fail(where + ": counter \"args\" missing numeric \"value\"");
      }
      std::int64_t tid = 0;
      if (const auto tid_raw = find_field(ev, "tid")) {
        if (const auto t = as_number(*tid_raw)) tid = static_cast<std::int64_t>(*t);
      }
      const auto key = std::make_pair(std::string(*name), tid);
      const auto it = last_ts.find(key);
      if (it != last_ts.end() && *ts < it->second) {
        return fail(where + ": counter track \"" + key.first +
                    "\" timestamps go backwards");
      }
      last_ts[key] = *ts;
    }
  }
  if (r.spans == 0) return fail("no complete (\"X\") span events");
  return r;
}

/// MetricRegistry snapshot: well-formed with counters/gauges/histograms.
inline LintResult lint_metrics(std::string_view text) {
  using namespace detail;
  const auto syntax = telemetry::jsonv::validate(text);
  if (!syntax.ok) {
    return fail("invalid JSON at byte " + std::to_string(syntax.error_offset) +
                ": " + syntax.error);
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (!telemetry::jsonv::has_top_level_key(text, key)) {
      return fail(std::string("missing top-level \"") + key + "\" key");
    }
  }
  return LintResult{};
}

/// JSON-lines: every non-empty line one well-formed object, at least one.
inline LintResult lint_jsonl(std::string_view text) {
  using namespace detail;
  LintResult r;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line =
        text.substr(start, nl == std::string_view::npos ? std::string_view::npos
                                                        : nl - start);
    ++lineno;
    if (!line.empty() && line != "\r") {
      const auto syntax = telemetry::jsonv::validate(line);
      if (!syntax.ok) {
        return fail("line " + std::to_string(lineno) + ": invalid JSON at byte " +
                    std::to_string(syntax.error_offset) + ": " + syntax.error);
      }
      ++r.rows;
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  if (r.rows == 0) return fail("no JSON objects");
  return r;
}

/// FlightRecorder black box: the self-contained post-mortem artifact. Must
/// be well-formed, identify itself ("kind": "dspcam.blackbox"), carry every
/// section the tooling reads (events + recorded/dropped accounting, health,
/// metrics, spans - the last three may be null but must be present), have
/// strictly increasing event sequence numbers, and no dumped span ending
/// before it starts.
inline LintResult lint_blackbox(std::string_view text) {
  using namespace detail;
  const auto syntax = telemetry::jsonv::validate(text);
  if (!syntax.ok) {
    return fail("invalid JSON at byte " + std::to_string(syntax.error_offset) +
                ": " + syntax.error);
  }
  for (const char* key : {"kind", "version", "cycle", "reason", "events",
                          "events_recorded", "events_dropped", "health",
                          "metrics", "spans"}) {
    if (!telemetry::jsonv::has_top_level_key(text, key)) {
      return fail(std::string("missing top-level \"") + key + "\" key");
    }
  }
  const auto kind_raw = find_field(text, "kind");
  const auto kind = kind_raw ? as_string(*kind_raw) : std::nullopt;
  if (!kind || *kind != "dspcam.blackbox") {
    return fail("\"kind\" is not \"dspcam.blackbox\"");
  }
  const auto events = find_field(text, "events");
  if (!events || events->empty() || events->front() != '[') {
    return fail("\"events\" is not an array");
  }
  LintResult r;
  double last_seq = -1.0;
  std::size_t idx = 0;
  for (const std::string_view ev : array_items(*events)) {
    const std::string where = "events[" + std::to_string(idx++) + "]";
    for (const char* key : {"seq", "cycle", "kind", "severity", "what"}) {
      if (!find_field(ev, key)) {
        return fail(where + ": missing \"" + std::string(key) + "\"");
      }
    }
    const auto seq = as_number(*find_field(ev, "seq"));
    if (!seq) return fail(where + ": \"seq\" is not a number");
    if (*seq <= last_seq) {
      return fail(where + ": event \"seq\" is not strictly increasing");
    }
    last_seq = *seq;
    ++r.rows;
  }
  if (const auto metrics = find_field(text, "metrics");
      metrics && *metrics != "null") {
    const auto inner = lint_metrics(*metrics);
    if (!inner.ok) return fail("\"metrics\" section: " + inner.error);
  }
  if (const auto spans = find_field(text, "spans"); spans && *spans != "null") {
    if (spans->empty() || spans->front() != '[') {
      return fail("\"spans\" is not an array or null");
    }
    std::size_t sidx = 0;
    for (const std::string_view sp : array_items(*spans)) {
      const std::string where = "spans[" + std::to_string(sidx++) + "]";
      const auto start_raw = find_field(sp, "start");
      const auto end_raw = find_field(sp, "end");
      const auto start = start_raw ? as_number(*start_raw) : std::nullopt;
      const auto end = end_raw ? as_number(*end_raw) : std::nullopt;
      if (!start || !end) return fail(where + ": missing \"start\"/\"end\"");
      if (*end < *start) return fail(where + ": span ends before it starts");
    }
  }
  if (const auto health = find_field(text, "health");
      health && *health != "null") {
    if (health->empty() || health->front() != '{') {
      return fail("\"health\" is not an object or null");
    }
  }
  return r;
}

}  // namespace dspcam::tools::tracelint
