// Parsing + rendering core for camtop (header-only so tests link it).
//
// camtop is "top" for a running simulation: it tails the snapshots.jsonl
// file a CamDriver writes (one {"cycle": C, "metrics": {...}} line per
// snapshot deadline) and renders the latest line as a text dashboard -
// driver queue/inflight/stall-headroom, latency percentiles, every health
// rule with its trip state, and a per-shard table (credits, parked work,
// quarantine flag, stored entries). Everything here works on strings so the
// tests can drive it without a filesystem; the CLI in camtop.cc adds the
// tailing loop and ANSI repaint.
//
// Field extraction reuses the depth-aware scanner from trace_lint_lib.h -
// same no-DOM philosophy as the rest of the telemetry tooling.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tools/trace_lint_lib.h"

namespace dspcam::tools::camtop {

namespace detail {

using tracelint::detail::as_number;
using tracelint::detail::as_string;
using tracelint::detail::find_field;
using tracelint::detail::skip_ws;
using tracelint::detail::value_end;

/// Key/value pairs at the top level of the object `obj`.
inline std::vector<std::pair<std::string_view, std::string_view>> object_fields(
    std::string_view obj) {
  std::vector<std::pair<std::string_view, std::string_view>> out;
  std::size_t i = skip_ws(obj, 0);
  if (i >= obj.size() || obj[i] != '{') return out;
  ++i;
  while (true) {
    i = skip_ws(obj, i);
    if (i >= obj.size() || obj[i] == '}') return out;
    if (obj[i] == ',') {
      ++i;
      continue;
    }
    if (obj[i] != '"') return out;
    const std::size_t key_start = i + 1;
    const std::size_t key_close = value_end(obj, i);
    const std::string_view key = obj.substr(key_start, key_close - key_start - 1);
    i = skip_ws(obj, key_close);
    if (i >= obj.size() || obj[i] != ':') return out;
    i = skip_ws(obj, i + 1);
    const std::size_t vend = value_end(obj, i);
    out.emplace_back(key, obj.substr(i, vend - i));
    i = vend;
  }
}

inline std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace detail

/// Percentile summary of one exported histogram.
struct HistStat {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One parsed snapshots.jsonl line, indexed for dashboard lookups.
struct SnapshotView {
  std::uint64_t cycle = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistStat> histograms;

  /// Parses one {"cycle": C, "metrics": {...}} line; nullopt when the line
  /// is not a snapshot (malformed, or missing either key).
  static std::optional<SnapshotView> parse(std::string_view line) {
    using namespace detail;
    const auto cycle_raw = find_field(line, "cycle");
    const auto metrics = find_field(line, "metrics");
    if (!cycle_raw || !metrics) return std::nullopt;
    const auto cycle = as_number(*cycle_raw);
    if (!cycle || metrics->empty() || metrics->front() != '{') {
      return std::nullopt;
    }
    SnapshotView v;
    v.cycle = static_cast<std::uint64_t>(*cycle);
    if (const auto c = find_field(*metrics, "counters")) {
      for (const auto& [name, value] : object_fields(*c)) {
        if (const auto n = as_number(value)) {
          v.counters[std::string(name)] = static_cast<std::uint64_t>(*n);
        }
      }
    }
    if (const auto g = find_field(*metrics, "gauges")) {
      for (const auto& [name, value] : object_fields(*g)) {
        if (const auto n = as_number(value)) {
          v.gauges[std::string(name)] = static_cast<std::int64_t>(*n);
        }
      }
    }
    if (const auto h = find_field(*metrics, "histograms")) {
      for (const auto& [name, value] : object_fields(*h)) {
        HistStat hs;
        if (const auto f = find_field(value, "count")) {
          if (const auto n = as_number(*f)) hs.count = static_cast<std::uint64_t>(*n);
        }
        if (const auto f = find_field(value, "p50")) {
          if (const auto n = as_number(*f)) hs.p50 = *n;
        }
        if (const auto f = find_field(value, "p95")) {
          if (const auto n = as_number(*f)) hs.p95 = *n;
        }
        if (const auto f = find_field(value, "p99")) {
          if (const auto n = as_number(*f)) hs.p99 = *n;
        }
        v.histograms[std::string(name)] = hs;
      }
    }
    return v;
  }

  std::optional<std::uint64_t> counter(const std::string& name) const {
    const auto it = counters.find(name);
    if (it == counters.end()) return std::nullopt;
    return it->second;
  }
  std::optional<std::int64_t> gauge(const std::string& name) const {
    const auto it = gauges.find(name);
    if (it == gauges.end()) return std::nullopt;
    return it->second;
  }
};

/// The last parseable snapshot in a snapshots.jsonl body (lines after it
/// may be truncated mid-write while the producer is live).
inline std::optional<SnapshotView> last_snapshot(std::string_view text) {
  std::optional<SnapshotView> latest;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line =
        text.substr(start, nl == std::string_view::npos ? std::string_view::npos
                                                        : nl - start);
    if (auto v = SnapshotView::parse(line)) latest = std::move(v);
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return latest;
}

/// Renders one snapshot as the camtop dashboard (plain text, no ANSI - the
/// CLI adds screen control around it).
inline std::string render_dashboard(const SnapshotView& v) {
  using detail::fmt;
  std::string out;
  out += "dspcam camtop  cycle " + std::to_string(v.cycle) + "\n";

  // -- Driver ---------------------------------------------------------------
  out += "\ndriver\n";
  out += "  queue=" + std::to_string(v.gauge("driver.queue_depth").value_or(0)) +
         "  inflight=" + std::to_string(v.gauge("driver.inflight").value_or(0)) +
         "  stall_headroom=" +
         std::to_string(v.gauge("driver.stall_headroom").value_or(0)) +
         "  submitted=" +
         std::to_string(v.counter("driver.submitted").value_or(0)) +
         "  completed=" +
         std::to_string(v.counter("driver.completed").value_or(0)) + "\n";
  if (const auto it = v.histograms.find("driver.latency_cycles");
      it != v.histograms.end() && it->second.count > 0) {
    out += "  latency n=" + std::to_string(it->second.count) +
           " p50=" + fmt("%.0f", it->second.p50) +
           " p95=" + fmt("%.0f", it->second.p95) +
           " p99=" + fmt("%.0f", it->second.p99) + "\n";
  }

  // -- Health rules (scan health.<rule>.state gauges) -----------------------
  std::vector<std::string> rules;
  for (const auto& [name, value] : v.gauges) {
    (void)value;
    constexpr std::string_view kPrefix = "health.";
    constexpr std::string_view kSuffix = ".state";
    if (name.size() > kPrefix.size() + kSuffix.size() &&
        name.compare(0, kPrefix.size(), kPrefix) == 0 &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      rules.push_back(
          name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size()));
    }
  }
  if (!rules.empty()) {
    out += "\nhealth  (" +
           std::to_string(v.gauge("health.tripped").value_or(0)) +
           " tripped)\n";
    for (const auto& rule : rules) {
      const bool tripped = v.gauge("health." + rule + ".state").value_or(0) != 0;
      out += std::string("  [") + (tripped ? "TRIP" : " ok ") + "] " + rule;
      if (out.size() > 0) {
        // Pad the rule name to keep the trips/value columns aligned.
        const std::size_t pad = rule.size() < 24 ? 24 - rule.size() : 1;
        out.append(pad, ' ');
      }
      out += "trips=" +
             std::to_string(v.counter("health." + rule + ".trips").value_or(0)) +
             "  value=" +
             std::to_string(v.gauge("health." + rule + ".value").value_or(0)) +
             "\n";
    }
  }

  // -- Per-shard table (scan engine.shard<N>.credits gauges) ----------------
  std::vector<std::pair<std::uint64_t, std::string>> shards;
  for (const auto& [name, value] : v.gauges) {
    (void)value;
    constexpr std::string_view kPrefix = "engine.shard";
    constexpr std::string_view kSuffix = ".credits";
    if (name.size() > kPrefix.size() + kSuffix.size() &&
        name.compare(0, kPrefix.size(), kPrefix) == 0 &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      const std::string id = name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
      if (!id.empty() && id.find_first_not_of("0123456789") == std::string::npos) {
        shards.emplace_back(std::stoull(id), "engine.shard" + id);
      }
    }
  }
  if (!shards.empty()) {
    out += "\nshards  id  credits  parked  stored  fifo  state\n";
    for (const auto& [id, sp] : shards) {
      char row[160];
      std::snprintf(row, sizeof(row),
                    "        %-3llu %-8lld %-7lld %-7lld %-5lld %s\n",
                    static_cast<unsigned long long>(id),
                    static_cast<long long>(v.gauge(sp + ".credits").value_or(0)),
                    static_cast<long long>(v.gauge(sp + ".parked").value_or(0)),
                    static_cast<long long>(
                        v.gauge(sp + ".stored_entries").value_or(0)),
                    static_cast<long long>(
                        v.gauge(sp + ".request_fifo_depth").value_or(0)),
                    v.gauge(sp + ".quarantined").value_or(0) != 0
                        ? "QUARANTINED"
                        : "ok");
      out += row;
    }
    out += "  rob search=" +
           std::to_string(v.gauge("engine.rob.search_depth").value_or(0)) +
           " ack=" + std::to_string(v.gauge("engine.rob.ack_depth").value_or(0)) +
           "  quarantined_shards=" +
           std::to_string(v.gauge("engine.quarantined_shards").value_or(0)) +
           "\n";
  }

  // -- Fault plane (only when a campaign reported in). Sums every counter
  // under "fault." per stat so both the injector's and the scrubber's
  // publication prefixes land in one row.
  std::uint64_t injected = 0, detected = 0, corrected = 0, silent = 0;
  bool have_fault = false;
  for (const auto& [name, value] : v.counters) {
    if (name.compare(0, 6, "fault.") != 0) continue;
    have_fault = true;
    if (name.size() >= 9 && name.compare(name.size() - 9, 9, ".injected") == 0) {
      injected += value;
    } else if (name.size() >= 9 &&
               name.compare(name.size() - 9, 9, ".detected") == 0) {
      detected += value;
    } else if (name.size() >= 10 &&
               name.compare(name.size() - 10, 10, ".corrected") == 0) {
      corrected += value;
    } else if (name.size() >= 7 &&
               name.compare(name.size() - 7, 7, ".silent") == 0) {
      silent += value;
    }
  }
  if (have_fault) {
    out += "\nfault  injected=" + std::to_string(injected) +
           "  detected=" + std::to_string(detected) +
           "  corrected=" + std::to_string(corrected) +
           "  silent=" + std::to_string(silent) + "\n";
  }
  return out;
}

}  // namespace dspcam::tools::camtop
