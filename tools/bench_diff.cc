// Compares two BENCH_*.json artifacts (JSON-lines, one row per object) and
// flags median regressions, so the perf-smoke job can annotate a PR with
// what actually moved instead of shipping an opaque blob.
//
//   bench_diff <baseline> <candidate> [--threshold 0.2]
//
// Rows are matched across files by their identity fields: every top-level
// field that is NOT a measured statistic (suffixes _median/_mean/_stddev/
// _min/_max/_samples) and NOT host- or derivation-dependent (host_cores,
// effective_step_threads, speedup_*, relative_rate, spans_finished,
// telemetry, sample_every). The identity is GENERIC - no per-kind schema -
// so rows of kinds this tool has never seen are still matched and diffed
// (bench_diff_lib.h, pinned by tests/tools/bench_diff_test.cc). For each
// matched pair, every *_median field present on both sides is compared; a
// drop of more than --threshold (fraction, default 0.2) is a regression.
// Rows present on only one side are reported but never fatal - benches gain
// and lose rows across PRs. Exits 1 iff at least one regression was found,
// 2 on usage/parse errors.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "tools/bench_diff_lib.h"

int main(int argc, char** argv) {
  using dspcam::tools::benchdiff::Row;
  using dspcam::tools::benchdiff::identity_of;
  using dspcam::tools::benchdiff::load_rows;

  std::string baseline_path, candidate_path;
  double threshold = 0.2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (candidate_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--threshold 0.2]\n");
    return 2;
  }

  std::vector<Row> baseline, candidate;
  if (!load_rows(baseline_path, baseline) || !load_rows(candidate_path, candidate)) {
    return 2;
  }

  std::map<std::string, const Row*> base_by_id;
  for (const Row& row : baseline) base_by_id[identity_of(row)] = &row;

  unsigned matched = 0, compared = 0, regressions = 0;
  std::vector<std::string> only_candidate;
  std::map<std::string, bool> base_seen;
  for (const Row& cand : candidate) {
    const std::string id = identity_of(cand);
    const auto it = base_by_id.find(id);
    if (it == base_by_id.end()) {
      only_candidate.push_back(id);
      continue;
    }
    base_seen[id] = true;
    ++matched;
    const Row& base = *it->second;
    for (const auto& [key, new_v] : cand.numbers) {
      const std::size_t n = std::strlen("_median");
      if (key.size() <= n || key.compare(key.size() - n, n, "_median") != 0) continue;
      const auto bv = base.numbers.find(key);
      if (bv == base.numbers.end()) continue;
      ++compared;
      const double old_v = bv->second;
      const double delta = old_v != 0 ? (new_v - old_v) / old_v : 0;
      const bool regressed = old_v > 0 && -delta > threshold;
      if (regressed) ++regressions;
      std::printf("%s  [%s]  %-24s %12.6g -> %12.6g  %+7.1f%%\n",
                  regressed ? "REGRESSION" : "ok        ", id.c_str(),
                  key.c_str(), old_v, new_v, 100.0 * delta);
    }
  }
  for (const auto& [id, row] : base_by_id) {
    if (!base_seen.count(id)) {
      std::printf("note: row only in baseline:  [%s]\n", id.c_str());
    }
    (void)row;
  }
  for (const std::string& id : only_candidate) {
    std::printf("note: row only in candidate: [%s]\n", id.c_str());
  }

  std::printf(
      "\nbench_diff: %u matched row(s), %u median comparison(s), "
      "%u regression(s) beyond %.0f%%\n",
      matched, compared, regressions, 100.0 * threshold);
  return regressions > 0 ? 1 : 0;
}
