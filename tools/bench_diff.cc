// Compares two BENCH_*.json artifacts (JSON-lines, one row per object) and
// flags median regressions, so the perf-smoke job can annotate a PR with
// what actually moved instead of shipping an opaque blob.
//
//   bench_diff <baseline> <candidate> [--threshold 0.2]
//
// Rows are matched across files by their identity fields: every top-level
// field that is NOT a measured statistic (suffixes _median/_mean/_stddev/
// _min/_max/_samples) and NOT host- or derivation-dependent (host_cores,
// effective_step_threads, speedup_*, relative_rate, spans_finished,
// telemetry, sample_every). For each matched pair, every *_median field
// present on both sides is compared; a drop of more than --threshold
// (fraction, default 0.2) is a regression. Rows present on only one side
// are reported but never fatal - benches gain and lose rows across PRs.
// Exits 1 iff at least one regression was found, 2 on usage/parse errors.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

/// One parsed bench row: scalar fields only; nested objects/arrays (e.g.
/// the "telemetry" registry dump) are skipped during parsing.
struct Row {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  unsigned line = 0;
};

bool is_stat_field(const std::string& key) {
  static const char* kSuffixes[] = {"_median", "_mean",    "_stddev",
                                    "_min",    "_max",     "_samples"};
  for (const char* s : kSuffixes) {
    const std::size_t n = std::strlen(s);
    if (key.size() > n && key.compare(key.size() - n, n, s) == 0) return true;
  }
  return false;
}

bool is_volatile_field(const std::string& key) {
  static const char* kVolatile[] = {
      "host_cores",        "effective_step_threads", "relative_rate",
      "spans_finished",    "telemetry",              "sample_every",
  };
  for (const char* v : kVolatile) {
    if (key == v) return true;
  }
  return key.compare(0, 8, "speedup_") == 0;
}

/// Minimal JSON scanner for one bench row. Scalars land in `row`; nested
/// objects and arrays are balance-skipped. Returns false on malformed input.
class LineParser {
 public:
  LineParser(const std::string& text) : s_(text) {}

  bool parse(Row& row) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value(row, key)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
      skip_ws();
    }
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        out += e == 'n' ? '\n' : e;  // enough for bench rows
      } else {
        out += c;
      }
    }
    return false;
  }
  /// Skips a balanced {...} or [...] (strings respected).
  bool skip_nested() {
    int depth = 0;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        std::string ignored;
        if (!parse_string(ignored)) return false;
        continue;
      }
      ++pos_;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        if (--depth == 0) return true;
      }
    }
    return false;
  }
  bool parse_value(Row& row, const std::string& key) {
    const char c = s_[pos_];
    if (c == '"') {
      std::string v;
      if (!parse_string(v)) return false;
      row.strings[key] = v;
      return true;
    }
    if (c == '{' || c == '[') return skip_nested();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      row.strings[key] = "true";
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      row.strings[key] = "false";
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    const double v = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    row.numbers[key] = v;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Stable identity string: sorted non-stat, non-volatile fields.
std::string identity_of(const Row& row) {
  std::string id;
  for (const auto& [k, v] : row.strings) {
    if (!is_stat_field(k) && !is_volatile_field(k)) id += k + "=" + v + " ";
  }
  for (const auto& [k, v] : row.numbers) {
    if (is_stat_field(k) || is_volatile_field(k)) continue;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%.6g ", k.c_str(), v);
    id += buf;
  }
  if (!id.empty()) id.pop_back();
  return id;
}

bool load_rows(const std::string& path, std::vector<Row>& rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    Row row;
    row.line = lineno;
    if (!LineParser(line).parse(row)) {
      std::fprintf(stderr, "bench_diff: %s:%u: malformed JSON row\n",
                   path.c_str(), lineno);
      return false;
    }
    rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path;
  double threshold = 0.2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (candidate_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--threshold 0.2]\n");
    return 2;
  }

  std::vector<Row> baseline, candidate;
  if (!load_rows(baseline_path, baseline) || !load_rows(candidate_path, candidate)) {
    return 2;
  }

  std::map<std::string, const Row*> base_by_id;
  for (const Row& row : baseline) base_by_id[identity_of(row)] = &row;

  unsigned matched = 0, compared = 0, regressions = 0;
  std::vector<std::string> only_candidate;
  std::map<std::string, bool> base_seen;
  for (const Row& cand : candidate) {
    const std::string id = identity_of(cand);
    const auto it = base_by_id.find(id);
    if (it == base_by_id.end()) {
      only_candidate.push_back(id);
      continue;
    }
    base_seen[id] = true;
    ++matched;
    const Row& base = *it->second;
    for (const auto& [key, new_v] : cand.numbers) {
      const std::size_t n = std::strlen("_median");
      if (key.size() <= n || key.compare(key.size() - n, n, "_median") != 0) continue;
      const auto bv = base.numbers.find(key);
      if (bv == base.numbers.end()) continue;
      ++compared;
      const double old_v = bv->second;
      const double delta = old_v != 0 ? (new_v - old_v) / old_v : 0;
      const bool regressed = old_v > 0 && -delta > threshold;
      if (regressed) ++regressions;
      std::printf("%s  [%s]  %-24s %12.6g -> %12.6g  %+7.1f%%\n",
                  regressed ? "REGRESSION" : "ok        ", id.c_str(),
                  key.c_str(), old_v, new_v, 100.0 * delta);
    }
  }
  for (const auto& [id, row] : base_by_id) {
    if (!base_seen.count(id)) {
      std::printf("note: row only in baseline:  [%s]\n", id.c_str());
    }
    (void)row;
  }
  for (const std::string& id : only_candidate) {
    std::printf("note: row only in candidate: [%s]\n", id.c_str());
  }

  std::printf(
      "\nbench_diff: %u matched row(s), %u median comparison(s), "
      "%u regression(s) beyond %.0f%%\n",
      matched, compared, regressions, 100.0 * threshold);
  return regressions > 0 ? 1 : 0;
}
