// CI artifact checker for the telemetry exporters.
//
// Validates the files traced_search (and the bench harnesses) emit, so the
// perf-smoke job fails when an exporter regresses into malformed JSON
// instead of shipping a trace Perfetto silently refuses to open:
//
//   trace_lint --trace FILE      Chrome trace-event JSON: well-formed, has
//                                a top-level "traceEvents" array with at
//                                least one complete ("X") event.
//   trace_lint --metrics FILE    MetricRegistry snapshot: well-formed, has
//                                "counters" / "gauges" / "histograms".
//   trace_lint --jsonl FILE      JSON-lines (snapshots, BENCH_*.json): every
//                                non-empty line is one well-formed object.
//
// Any mix of flags may be repeated; exits non-zero on the first failure.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/telemetry/jsonv.h"

namespace {

using dspcam::telemetry::jsonv::has_top_level_key;
using dspcam::telemetry::jsonv::validate;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool fail(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "trace_lint: %s: %s\n", path.c_str(), why.c_str());
  return false;
}

bool check_json(const std::string& path, const std::string& text) {
  const auto r = validate(text);
  if (!r.ok) {
    return fail(path, "invalid JSON at byte " + std::to_string(r.error_offset) +
                          ": " + r.error);
  }
  return true;
}

bool check_trace(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) return false;
  if (!check_json(path, text)) return false;
  if (!has_top_level_key(text, "traceEvents")) {
    return fail(path, "missing top-level \"traceEvents\" key");
  }
  // At least one complete event, or the trace renders as an empty screen.
  if (text.find("\"ph\": \"X\"") == std::string::npos &&
      text.find("\"ph\":\"X\"") == std::string::npos) {
    return fail(path, "no complete (\"X\") span events");
  }
  std::printf("trace_lint: %s ok (trace)\n", path.c_str());
  return true;
}

bool check_metrics(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) return false;
  if (!check_json(path, text)) return false;
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (!has_top_level_key(text, key)) {
      return fail(path, std::string("missing top-level \"") + key + "\" key");
    }
  }
  std::printf("trace_lint: %s ok (metrics)\n", path.c_str());
  return true;
}

bool check_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t objects = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto r = validate(line);
    if (!r.ok) {
      return fail(path, "line " + std::to_string(lineno) + ": invalid JSON at byte " +
                            std::to_string(r.error_offset) + ": " + r.error);
    }
    ++objects;
  }
  if (objects == 0) return fail(path, "no JSON objects");
  std::printf("trace_lint: %s ok (%zu JSONL rows)\n", path.c_str(), objects);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_lint [--trace FILE] [--metrics FILE] "
                 "[--jsonl FILE] ...\n");
    return 2;
  }
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string path = argv[i + 1];
    bool ok = false;
    if (flag == "--trace") {
      ok = check_trace(path);
    } else if (flag == "--metrics") {
      ok = check_metrics(path);
    } else if (flag == "--jsonl") {
      ok = check_jsonl(path);
    } else {
      std::fprintf(stderr, "trace_lint: unknown flag %s\n", flag.c_str());
      return 2;
    }
    if (!ok) return 1;
  }
  return 0;
}
