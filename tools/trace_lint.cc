// CI artifact checker for the telemetry exporters.
//
// Validates the files traced_search (and the bench harnesses) emit, so the
// perf-smoke job fails when an exporter regresses into malformed JSON
// instead of shipping a trace Perfetto silently refuses to open:
//
//   trace_lint --trace FILE      Chrome trace-event JSON: well-formed, has
//                                a top-level "traceEvents" array with at
//                                least one complete ("X") event, no span
//                                with negative duration, and every counter
//                                ("C") event well-shaped with monotonic
//                                timestamps per counter track.
//   trace_lint --metrics FILE    MetricRegistry snapshot: well-formed, has
//                                "counters" / "gauges" / "histograms".
//   trace_lint --jsonl FILE      JSON-lines (snapshots, BENCH_*.json): every
//                                non-empty line is one well-formed object.
//   trace_lint --blackbox FILE   FlightRecorder black-box dump: identifies
//                                itself, carries events/health/metrics/spans
//                                sections, event seq strictly increasing.
//
// Any mix of flags may be repeated; exits non-zero on the first failure.
// The checks themselves live in trace_lint_lib.h (tested directly).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/trace_lint_lib.h"

namespace {

using dspcam::tools::tracelint::LintResult;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool report(const std::string& path, const char* what, const LintResult& r,
            const std::string& detail) {
  if (!r.ok) {
    std::fprintf(stderr, "trace_lint: %s: %s\n", path.c_str(), r.error.c_str());
    return false;
  }
  std::printf("trace_lint: %s ok (%s%s)\n", path.c_str(), what, detail.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_lint [--trace FILE] [--metrics FILE] "
                 "[--jsonl FILE] [--blackbox FILE] ...\n");
    return 2;
  }
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string path = argv[i + 1];
    std::string text;
    if (!read_file(path, text)) return 1;
    bool ok = false;
    if (flag == "--trace") {
      const auto r = dspcam::tools::tracelint::lint_trace(text);
      ok = report(path, "trace",
                  r, ", " + std::to_string(r.spans) + " spans, " +
                         std::to_string(r.counters) + " counter events");
    } else if (flag == "--metrics") {
      ok = report(path, "metrics", dspcam::tools::tracelint::lint_metrics(text),
                  "");
    } else if (flag == "--jsonl") {
      const auto r = dspcam::tools::tracelint::lint_jsonl(text);
      ok = report(path, "jsonl", r,
                  ", " + std::to_string(r.rows) + " rows");
    } else if (flag == "--blackbox") {
      const auto r = dspcam::tools::tracelint::lint_blackbox(text);
      ok = report(path, "blackbox", r,
                  ", " + std::to_string(r.rows) + " events");
    } else {
      std::fprintf(stderr, "trace_lint: unknown flag %s\n", flag.c_str());
      return 2;
    }
    if (!ok) return 1;
  }
  return 0;
}
